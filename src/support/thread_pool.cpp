#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "support/assert.hpp"

namespace rumor {

namespace {

// Identifies the executing thread's slot in its owning pool. Thread-local
// rather than shard-local so overlapping parallel_for calls on the same
// pool can never hand one worker slot to two live threads.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;
// Last range-job epoch this worker participated in; a worker only wakes
// for a range job it has not yet drained (see parallel_for_ranges_impl).
thread_local std::uint64_t tl_range_epoch = 0;

}  // namespace

// The stack-allocated descriptor an in-flight parallel_for_ranges shares
// with participating workers. `next` is the shard claim cursor, `done`
// counts completed shards, and `touching` counts threads still holding a
// pointer to this frame — the caller must not return (and destroy the
// frame) until done == shards and touching == 0.
struct ThreadPool::RangeJob {
  RangeFn fn;
  void* ctx;
  std::size_t count;
  std::size_t shards;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<std::size_t> touching{0};
};

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  tl_pool = this;
  tl_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    RangeJob* range = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] {
        return stopping_ || !tasks_.empty() ||
               (range_job_ != nullptr && tl_range_epoch != range_epoch_);
      });
      if (range_job_ != nullptr && tl_range_epoch != range_epoch_) {
        // Pin the frame (under mutex_, while range_job_ is known valid)
        // before dropping the lock; the caller waits for touching == 0.
        tl_range_epoch = range_epoch_;
        range = range_job_;
        range->touching.fetch_add(1, std::memory_order_relaxed);
      } else if (stopping_ && tasks_.empty()) {
        return;
      } else {
        task = std::move(tasks_.front());
        tasks_.pop();
      }
    }
    if (range != nullptr) {
      run_range_job(*range);
      {
        std::lock_guard lock(mutex_);
        range->touching.fetch_sub(1, std::memory_order_relaxed);
      }
      range_done_cv_.notify_all();
    } else {
      task();
    }
  }
}

// Claims shards off `job` until the cursor is exhausted. Runs on workers
// and on the submitting caller alike.
void ThreadPool::run_range_job(RangeJob& job) {
  for (;;) {
    const std::size_t s = job.next.fetch_add(1, std::memory_order_relaxed);
    if (s >= job.shards) return;
    const auto [begin, end] = shard_range(job.count, job.shards, s);
    job.fn(job.ctx, s, begin, end);
    job.done.fetch_add(1, std::memory_order_release);
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_indexed(
      count, [&fn](std::size_t /*worker*/, std::size_t i) { fn(i); });
}

void ThreadPool::parallel_for_indexed(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t chunk) {
  if (count == 0) return;
  const std::size_t workers = threads_.size();
  // Inline path: trivial work, a single worker, or a NESTED call from one
  // of this pool's own workers. The nested case must flatten: queueing and
  // blocking from inside the pool deadlocks once every worker is parked in
  // a nested call with nobody left to drain the queue.
  if (count == 1 || workers == 1 || tl_pool == this) {
    const std::size_t self =
        tl_pool == this ? tl_worker_index : workers;
    for (std::size_t i = 0; i < count; ++i) fn(self, i);
    return;
  }

  const std::size_t shards = std::min(workers, count);
  if (chunk == 0) {
    // Small enough that the tail stays balanced across shards, large enough
    // that the shared atomic is touched O(shards) times, not O(count).
    chunk = std::max<std::size_t>(1, count / (shards * 8));
  }

  // Chunked ranges are claimed via a shared atomic cursor; one queued shard
  // per worker. parallel_for_indexed blocks until every shard finishes, so
  // capturing locals by reference in the shard closure is safe. The
  // completion count is decremented under done_mutex so the waiter cannot
  // observe zero (and destroy the condition variable) while a worker still
  // holds it.
  std::atomic<std::size_t> next{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = shards;

  auto shard_fn = [&next, &remaining, count, chunk, workers, this, &fn,
                   &done_mutex, &done_cv] {
    const std::size_t worker =
        tl_pool == this ? tl_worker_index : workers;
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= count) break;
      const std::size_t end = std::min(begin + chunk, count);
      for (std::size_t i = begin; i < end; ++i) fn(worker, i);
    }
    std::lock_guard lock(done_mutex);
    if (--remaining == 0) done_cv.notify_all();
  };

  {
    std::lock_guard lock(mutex_);
    RUMOR_CHECK(!stopping_);
    for (std::size_t s = 0; s < shards; ++s) tasks_.push(shard_fn);
  }
  cv_.notify_all();

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

bool ThreadPool::on_worker_thread() const { return tl_pool == this; }

void ThreadPool::parallel_for_ranges_impl(std::size_t count,
                                          std::size_t shards, RangeFn fn,
                                          void* ctx) {
  if (count == 0) return;
  shards = std::min(std::max<std::size_t>(1, shards), count);

  // Inline path — serial, in shard order, with the same range boundaries
  // the parallel path would use (the merge-order contract): degenerate
  // widths, nested calls from this pool's own workers (queue-and-block
  // would deadlock), and a pool whose single range-job slot is already
  // occupied by a concurrent caller.
  auto run_inline = [&] {
    for (std::size_t s = 0; s < shards; ++s) {
      const auto [begin, end] = shard_range(count, shards, s);
      fn(ctx, s, begin, end);
    }
  };
  if (shards == 1 || threads_.size() == 1 || tl_pool == this) {
    run_inline();
    return;
  }
  std::unique_lock slot(range_mutex_, std::try_to_lock);
  if (!slot.owns_lock()) {
    run_inline();
    return;
  }

  RangeJob job{fn, ctx, count, shards};
  {
    std::lock_guard lock(mutex_);
    RUMOR_CHECK(!stopping_);
    range_job_ = &job;
    ++range_epoch_;
  }
  cv_.notify_all();

  // The caller participates too, then waits until every shard completed
  // AND every worker that pinned the frame released it (a worker may hold
  // the pointer past the last claim while it exits its claim loop).
  run_range_job(job);
  {
    std::unique_lock lock(mutex_);
    range_done_cv_.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) == job.shards &&
             job.touching.load(std::memory_order_relaxed) == 0;
    });
    range_job_ = nullptr;
  }
}

namespace {

std::atomic<std::size_t> g_requested_workers{0};
std::atomic<bool> g_pool_constructed{false};

}  // namespace

ThreadPool& global_pool() {
  static ThreadPool pool{[] {
    g_pool_constructed.store(true);
    return g_requested_workers.load();
  }()};
  return pool;
}

void set_global_pool_workers(std::size_t workers) {
  // A fixed-size pool cannot be resized after threads exist; configuring
  // too late would silently run at the wrong width.
  RUMOR_CHECK(!g_pool_constructed.load());
  g_requested_workers.store(workers);
}

namespace {

thread_local ThreadPool* tl_shard_pool = nullptr;

}  // namespace

ThreadPool& shard_pool() {
  return tl_shard_pool != nullptr ? *tl_shard_pool : global_pool();
}

ThreadPool* set_shard_pool(ThreadPool* pool) {
  ThreadPool* previous = tl_shard_pool;
  tl_shard_pool = pool;
  return previous;
}

}  // namespace rumor

#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "support/assert.hpp"

namespace rumor {

namespace {

// Identifies the executing thread's slot in its owning pool. Thread-local
// rather than shard-local so overlapping parallel_for calls on the same
// pool can never hand one worker slot to two live threads.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  tl_pool = this;
  tl_worker_index = worker_index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_indexed(
      count, [&fn](std::size_t /*worker*/, std::size_t i) { fn(i); });
}

void ThreadPool::parallel_for_indexed(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t chunk) {
  if (count == 0) return;
  const std::size_t workers = threads_.size();
  if (count == 1 || workers == 1) {  // avoid queueing overhead
    const std::size_t self =
        tl_pool == this ? tl_worker_index : workers;
    for (std::size_t i = 0; i < count; ++i) fn(self, i);
    return;
  }

  const std::size_t shards = std::min(workers, count);
  if (chunk == 0) {
    // Small enough that the tail stays balanced across shards, large enough
    // that the shared atomic is touched O(shards) times, not O(count).
    chunk = std::max<std::size_t>(1, count / (shards * 8));
  }

  // Chunked ranges are claimed via a shared atomic cursor; one queued shard
  // per worker. parallel_for_indexed blocks until every shard finishes, so
  // capturing locals by reference in the shard closure is safe. The
  // completion count is decremented under done_mutex so the waiter cannot
  // observe zero (and destroy the condition variable) while a worker still
  // holds it.
  std::atomic<std::size_t> next{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = shards;

  auto shard_fn = [&next, &remaining, count, chunk, workers, this, &fn,
                   &done_mutex, &done_cv] {
    const std::size_t worker =
        tl_pool == this ? tl_worker_index : workers;
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk);
      if (begin >= count) break;
      const std::size_t end = std::min(begin + chunk, count);
      for (std::size_t i = begin; i < end; ++i) fn(worker, i);
    }
    std::lock_guard lock(done_mutex);
    if (--remaining == 0) done_cv.notify_all();
  };

  {
    std::lock_guard lock(mutex_);
    RUMOR_CHECK(!stopping_);
    for (std::size_t s = 0; s < shards; ++s) tasks_.push(shard_fn);
  }
  cv_.notify_all();

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

namespace {

std::atomic<std::size_t> g_requested_workers{0};
std::atomic<bool> g_pool_constructed{false};

}  // namespace

ThreadPool& global_pool() {
  static ThreadPool pool{[] {
    g_pool_constructed.store(true);
    return g_requested_workers.load();
  }()};
  return pool;
}

void set_global_pool_workers(std::size_t workers) {
  // A fixed-size pool cannot be resized after threads exist; configuring
  // too late would silently run at the wrong width.
  RUMOR_CHECK(!g_pool_constructed.load());
  g_requested_workers.store(workers);
}

}  // namespace rumor

#include "support/bitset.hpp"

#include <bit>

namespace rumor {

std::size_t DynamicBitset::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t DynamicBitset::find_first_unset() const {
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    const std::uint64_t inverted = ~words_[wi];
    if (inverted != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(inverted));
      const std::size_t idx = wi * 64 + bit;
      return idx < size_ ? idx : size_;
    }
  }
  return size_;
}

bool DynamicBitset::is_subset_of(const DynamicBitset& other) const {
  RUMOR_REQUIRE(size_ == other.size_);
  for (std::size_t wi = 0; wi < words_.size(); ++wi) {
    if ((words_[wi] & ~other.words_[wi]) != 0) return false;
  }
  return true;
}

}  // namespace rumor

#include "support/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "support/assert.hpp"

namespace rumor {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  RUMOR_REQUIRE(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  RUMOR_REQUIRE(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TextTable::num(std::uint64_t value) {
  return std::to_string(value);
}

std::vector<std::size_t> TextTable::widths() const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      w[c] = std::max(w[c], row[c].size());
    }
  }
  return w;
}

void TextTable::emit_plain_row(std::ostream& out,
                               const std::vector<std::string>& cells,
                               const std::vector<std::size_t>& widths) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const std::size_t width = c < widths.size() ? widths[c] : 0;
    out << (c == 0 ? "" : "  ") << cells[c]
        << std::string(width > cells[c].size() ? width - cells[c].size() : 0,
                       ' ');
  }
  out << '\n';
}

std::string TextTable::plain_rule(const std::vector<std::size_t>& widths) {
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  return std::string(total, '-');
}

std::string TextTable::render_plain() const {
  const auto w = widths();
  std::ostringstream out;
  emit_plain_row(out, header_, w);
  out << plain_rule(w) << '\n';
  for (const auto& row : rows_) emit_plain_row(out, row, w);
  return out.str();
}

std::string TextTable::render_markdown() const {
  const auto w = widths();
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(w[c] - cells[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  emit(header_);
  out << '|';
  for (std::size_t c = 0; c < w.size(); ++c) {
    out << std::string(w[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace rumor

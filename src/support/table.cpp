#include "support/table.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "support/assert.hpp"

namespace rumor {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  RUMOR_REQUIRE(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  RUMOR_REQUIRE(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string TextTable::num(std::uint64_t value) {
  return std::to_string(value);
}

std::vector<std::size_t> TextTable::widths() const {
  std::vector<std::size_t> w(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      w[c] = std::max(w[c], row[c].size());
    }
  }
  return w;
}

std::string TextTable::render_plain() const {
  const auto w = widths();
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c] << std::string(w[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < w.size(); ++c) total += w[c] + (c == 0 ? 0 : 2);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::render_markdown() const {
  const auto w = widths();
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << cells[c] << std::string(w[c] - cells[c].size(), ' ')
          << " |";
    }
    out << '\n';
  };
  emit(header_);
  out << '|';
  for (std::size_t c = 0; c < w.size(); ++c) {
    out << std::string(w[c] + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace rumor

// Fixed-size thread pool with a deterministic parallel_for.
//
// Experiment trials are embarrassingly parallel; each index derives its own
// RNG seed from (master, index), so results are identical regardless of the
// number of workers or scheduling order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rumor {

class ThreadPool {
 public:
  // workers == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  // Runs fn(i) for every i in [0, count). Blocks until all complete.
  // fn must not throw (simulation code reports failures via contract
  // aborts); indices are claimed atomically so work is balanced.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
};

// Process-wide pool for experiment runners (constructed on first use).
ThreadPool& global_pool();

}  // namespace rumor

// Fixed-size thread pool with a deterministic parallel_for.
//
// Experiment trials are embarrassingly parallel; each index derives its own
// RNG seed from (master, index), so results are identical regardless of the
// number of workers or scheduling order.
//
// parallel_for_indexed additionally reports a stable *worker index* to the
// callback: pool thread k always reports k, and any other thread (the
// caller on the inline path, or a foreign thread) reports worker_count().
// The index identifies the executing thread — not the queued shard — so a
// callee can own mutable state per pool worker (e.g. a TrialArena) that is
// never touched by two tasks concurrently, even when several parallel_for
// calls from different caller threads overlap on the same pool. Index
// worker_count() is shared by ALL non-pool threads; callees keying state by
// it must use thread-local storage for that slot (see trials.cpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rumor {

class ThreadPool {
 public:
  // workers == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  // Runs fn(i) for every i in [0, count). Blocks until all complete.
  // fn must not throw (simulation code reports failures via contract
  // aborts); work is claimed in chunks so scheduling stays balanced without
  // one atomic operation per index.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  // As parallel_for, but fn(worker, i) also receives the executing thread's
  // stable worker index in [0, worker_count()]; index worker_count() is the
  // calling thread (inline path). `chunk` is the number of consecutive
  // indices claimed per scheduling operation; 0 picks a granularity that
  // amortizes the atomic while keeping shards balanced.
  void parallel_for_indexed(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t chunk = 0);

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
};

// Process-wide pool for experiment runners (constructed on first use).
ThreadPool& global_pool();

// Sets the worker count global_pool() will be constructed with (the CLI's
// --jobs=N). Must be called before the first global_pool() use — the pool
// is fixed-size — and aborts otherwise; 0 restores the hardware default.
void set_global_pool_workers(std::size_t workers);

}  // namespace rumor

// Fixed-size thread pool with a deterministic parallel_for.
//
// Experiment trials are embarrassingly parallel; each index derives its own
// RNG seed from (master, index), so results are identical regardless of the
// number of workers or scheduling order.
//
// parallel_for_indexed additionally reports a stable *worker index* to the
// callback: pool thread k always reports k, and any other thread (the
// caller on the inline path, or a foreign thread) reports worker_count().
// The index identifies the executing thread — not the queued shard — so a
// callee can own mutable state per pool worker (e.g. a TrialArena) that is
// never touched by two tasks concurrently, even when several parallel_for
// calls from different caller threads overlap on the same pool. Index
// worker_count() is shared by ALL non-pool threads; callees keying state by
// it must use thread-local storage for that slot (see trials.cpp).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rumor {

class ThreadPool {
 public:
  // workers == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  // Runs fn(i) for every i in [0, count). Blocks until all complete.
  // fn must not throw (simulation code reports failures via contract
  // aborts); work is claimed in chunks so scheduling stays balanced without
  // one atomic operation per index.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  // As parallel_for, but fn(worker, i) also receives the executing thread's
  // stable worker index in [0, worker_count()]; index worker_count() is the
  // calling thread (inline path). `chunk` is the number of consecutive
  // indices claimed per scheduling operation; 0 picks a granularity that
  // amortizes the atomic while keeping shards balanced.
  void parallel_for_indexed(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t chunk = 0);

  // True when the calling thread is one of THIS pool's workers. A nested
  // parallel_for* from a worker flattens to a serial inline run instead of
  // queueing (queue-and-block from inside the pool is a deadlock: with every
  // worker blocked in a nested call there is nobody left to drain the
  // queue).
  [[nodiscard]] bool on_worker_thread() const;

  // Range-partitioned variant for sharded round kernels: splits [0, count)
  // into exactly min(shards, count) balanced contiguous ranges and runs
  // fn(shard, begin, end) for each, blocking until all complete. Range
  // boundaries depend only on (count, shards) — see shard_range — never on
  // worker count or scheduling, so callers can key deterministic state by
  // shard index. Unlike parallel_for_indexed this path performs no heap
  // allocation: the job descriptor lives on the caller's stack and idle
  // workers claim ranges through it. Runs inline (serially, in shard order)
  // when shards <= 1, the pool has one worker, the caller IS a worker of
  // this pool, or another range job is already in flight on this pool.
  template <typename Fn>
  void parallel_for_ranges(std::size_t count, std::size_t shards, Fn&& fn) {
    using Decayed = std::remove_reference_t<Fn>;
    parallel_for_ranges_impl(
        count, shards,
        [](void* ctx, std::size_t shard, std::size_t begin, std::size_t end) {
          (*static_cast<Decayed*>(ctx))(shard, begin, end);
        },
        const_cast<void*>(
            static_cast<const void*>(std::addressof(fn))));
  }

  // The [begin, end) range shard s of `shards` covers: q = count/shards
  // indices each, with the first count%shards shards taking one extra. Pure
  // in (count, shards, s) — the determinism contract of the sharded
  // kernels rests on this being independent of everything else.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> shard_range(
      std::size_t count, std::size_t shards, std::size_t s) {
    const std::size_t q = count / shards;
    const std::size_t r = count % shards;
    const std::size_t begin = s * q + std::min(s, r);
    return {begin, begin + q + (s < r ? 1 : 0)};
  }

 private:
  using RangeFn = void (*)(void*, std::size_t, std::size_t, std::size_t);
  struct RangeJob;

  void worker_loop(std::size_t worker_index);
  void parallel_for_ranges_impl(std::size_t count, std::size_t shards,
                                RangeFn fn, void* ctx);
  void run_range_job(RangeJob& job);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
  // Active parallel_for_ranges job (stack-allocated by the caller; nulled
  // by the caller after completion). range_epoch_ increments per job so a
  // worker that already drained this job's claims does not spin on it.
  RangeJob* range_job_ = nullptr;
  std::uint64_t range_epoch_ = 0;
  std::mutex range_mutex_;  // one range job in flight per pool
  std::condition_variable range_done_cv_;
};

// Process-wide pool for experiment runners (constructed on first use).
ThreadPool& global_pool();

// Sets the worker count global_pool() will be constructed with (the CLI's
// --jobs=N). Must be called before the first global_pool() use — the pool
// is fixed-size — and aborts otherwise; 0 restores the hardware default.
void set_global_pool_workers(std::size_t workers);

// Ambient pool the sharded round kernels fan per-shard work onto. Defaults
// to global_pool(); the trial scheduler points it at its own pool for the
// duration of a wide (multi-worker) trial. Thread-local on purpose: two
// schedulers running concurrently (the serve daemon) must not see each
// other's override, and a kernel invoked FROM a pool worker flattens its
// nested parallel_for_ranges inline, so the hook is always safe to consult.
[[nodiscard]] ThreadPool& shard_pool();

// Installs `pool` as the calling thread's shard pool (nullptr restores the
// global_pool() default) and returns the previous override.
ThreadPool* set_shard_pool(ThreadPool* pool);

}  // namespace rumor

#include "support/fit.hpp"

#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace rumor {

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  RUMOR_REQUIRE(x.size() == y.size());
  RUMOR_REQUIRE(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {  // all x identical: degenerate, report flat line
    fit.slope = 0.0;
    fit.intercept = sy / n;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double ymean = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.slope * x[i] + fit.intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ymean) * (y[i] - ymean);
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

namespace {

std::vector<double> log_of(std::span<const double> v) {
  std::vector<double> out;
  out.reserve(v.size());
  for (double x : v) {
    RUMOR_REQUIRE(x > 0.0);
    out.push_back(std::log(x));
  }
  return out;
}

}  // namespace

LinearFit fit_power(std::span<const double> n, std::span<const double> t) {
  const auto ln_n = log_of(n);
  const auto ln_t = log_of(t);
  return fit_linear(ln_n, ln_t);
}

LinearFit fit_log_law(std::span<const double> n, std::span<const double> t) {
  const auto ln_n = log_of(n);
  return fit_linear(ln_n, std::vector<double>(t.begin(), t.end()));
}

std::string LawVerdict::describe() const {
  char buf[160];
  const char* name = "power";
  if (best == GrowthLaw::logarithmic) name = "logarithmic";
  if (best == GrowthLaw::linearithmic) name = "n*log(n)";
  std::snprintf(buf, sizeof buf,
                "%s (power exponent %.3f; R2: log %.3f, power %.3f, nlogn %.3f)",
                name, power_exponent, r2_log, r2_power, r2_nlogn);
  return buf;
}

LawVerdict classify_growth(std::span<const double> n,
                           std::span<const double> t) {
  RUMOR_REQUIRE(n.size() == t.size());
  RUMOR_REQUIRE(n.size() >= 3);
  LawVerdict v;

  const LinearFit power = fit_power(n, t);
  const LinearFit loglaw = fit_log_law(n, t);
  v.power_exponent = power.slope;
  v.r2_power = power.r_squared;
  v.r2_log = loglaw.r_squared;

  // n·log n law: fit T against x = n·ln n linearly.
  std::vector<double> nlogn(n.size());
  for (std::size_t i = 0; i < n.size(); ++i) nlogn[i] = n[i] * std::log(n[i]);
  v.r2_nlogn = fit_linear(nlogn, std::vector<double>(t.begin(), t.end())).r_squared;

  if (power.slope < 0.15) {
    v.best = GrowthLaw::logarithmic;
  } else if (power.slope > 0.85 && v.r2_nlogn > v.r2_power) {
    v.best = GrowthLaw::linearithmic;
  } else {
    v.best = GrowthLaw::power;
  }
  return v;
}

}  // namespace rumor

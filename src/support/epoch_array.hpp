// EpochArray<T>: a fixed-default array of values with O(1) whole-array reset.
//
// Generalizes StampSet from membership to values: each slot carries the
// epoch at which it was last written, and a slot whose stamp is stale reads
// as the default value. reset() bumps the epoch instead of touching O(n)
// memory, which is what lets a trial arena hand the same buffers to
// thousands of consecutive simulation trials with no per-trial clearing or
// allocation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace rumor {

template <typename T>
class EpochArray {
 public:
  EpochArray() = default;

  // Re-targets the array to `n` slots all reading `default_value`. O(1)
  // when capacity suffices (the steady-state trial path); grows otherwise.
  void reset(std::size_t n, T default_value) {
    default_ = default_value;
    if (n > stamps_.size()) {
      stamps_.assign(n, 0);
      values_.resize(n);
      epoch_ = 1;
    } else {
      ++epoch_;
      if (epoch_ == 0) {  // wrapped after 2^32 resets: hard clear, amortized free
        std::fill(stamps_.begin(), stamps_.end(), std::uint32_t{0});
        epoch_ = 1;
      }
    }
    size_ = n;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] T default_value() const { return default_; }

  [[nodiscard]] T get(std::size_t i) const {
    RUMOR_CHECK(i < size_);
    return stamps_[i] == epoch_ ? values_[i] : default_;
  }

  // True iff the slot was written since the last reset.
  [[nodiscard]] bool touched(std::size_t i) const {
    RUMOR_CHECK(i < size_);
    return stamps_[i] == epoch_;
  }

  void set(std::size_t i, T value) {
    RUMOR_CHECK(i < size_);
    stamps_[i] = epoch_;
    values_[i] = value;
  }

  // Counter-style accumulate; stale slots restart from the default.
  T add(std::size_t i, T delta) {
    const T updated = get(i) + delta;
    set(i, updated);
    return updated;
  }

  // Hints the cache lines behind slot i into cache ahead of a get() —
  // for pointer-chasing consumers (push's wake calendar) whose next slot
  // is known one iteration early.
  void prefetch(std::size_t i) const {
    __builtin_prefetch(stamps_.data() + i, /*rw=*/0, /*locality=*/3);
    __builtin_prefetch(values_.data() + i, /*rw=*/0, /*locality=*/3);
  }

  // Raw-pointer read view for hot loops: hoists the array/epoch
  // indirections out of per-element reads. Reads made through a view
  // observe set()/add() writes (the buffers are stable for the life of a
  // trial); the view dangles after the next reset() that grows the array.
  struct View {
    const std::uint32_t* stamps;
    const T* values;
    std::uint32_t epoch;
    T def;

    [[nodiscard]] T get(std::size_t i) const {
      return stamps[i] == epoch ? values[i] : def;
    }
    [[nodiscard]] bool touched(std::size_t i) const {
      return stamps[i] == epoch;
    }
    void prefetch(std::size_t i) const {
      __builtin_prefetch(stamps + i, /*rw=*/0, /*locality=*/3);
      __builtin_prefetch(values + i, /*rw=*/0, /*locality=*/3);
    }
  };

  [[nodiscard]] View view() const {
    return View{stamps_.data(), values_.data(), epoch_, default_};
  }

  // Materializes the logical contents (allocates; trace-export only).
  [[nodiscard]] std::vector<T> to_vector() const {
    std::vector<T> out(size_);
    for (std::size_t i = 0; i < size_; ++i) out[i] = get(i);
    return out;
  }

 private:
  std::vector<std::uint32_t> stamps_;  // capacity; logical size is size_
  std::vector<T> values_;
  std::size_t size_ = 0;
  std::uint32_t epoch_ = 1;
  T default_{};
};

}  // namespace rumor

// Multi-rumor dissemination tests: correctness of the shared-substrate
// semantics and the key structural property — each rumor's marginal law is
// the single-rumor protocol (rumors share bandwidth without interference).
#include <gtest/gtest.h>

#include <cmath>

#include "core/multi_rumor.hpp"
#include "core/push_pull.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"
#include "support/stats.hpp"

namespace rumor {
namespace {

TEST(MultiRumorPushPull, SingleRumorCompletes) {
  const Graph g = gen::complete(32);
  MultiRumorPushPull p(g, {{0, 0}}, 7);
  const MultiRumorResult r = p.run();
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.completion_round.size(), 1u);
  EXPECT_EQ(r.latency[0], r.completion_round[0]);
}

TEST(MultiRumorPushPull, AllRumorsReachEveryVertex) {
  const Graph g = gen::hypercube(6);
  std::vector<RumorSpec> rumors;
  for (Vertex s = 0; s < 8; ++s) rumors.push_back({s * 8, 0});
  MultiRumorPushPull p(g, rumors, 3);
  const MultiRumorResult r = p.run();
  ASSERT_TRUE(r.completed);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(p.vertex_rumors(v), (RumorMask{1} << 8) - 1);
  }
}

TEST(MultiRumorPushPull, StaggeredReleasesRespectReleaseRounds) {
  const Graph g = gen::complete(64);
  const std::vector<RumorSpec> rumors = {{0, 0}, {1, 10}, {2, 25}};
  MultiRumorPushPull p(g, rumors, 5);
  const MultiRumorResult r = p.run();
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.completion_round[1], 10u);
  EXPECT_GE(r.completion_round[2], 25u);
  // Latency is measured from release, so all three should be comparable.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GT(r.latency[i], 0u);
    EXPECT_LT(r.latency[i], 60u);
  }
}

TEST(MultiRumorPushPull, RumorNotHeldBeforeRelease) {
  const Graph g = gen::complete(16);
  MultiRumorPushPull p(g, {{0, 0}, {5, 8}}, 9);
  for (Round t = 0; t < 7; ++t) {
    p.step();
    for (Vertex v = 0; v < 16; ++v) {
      EXPECT_EQ(p.vertex_rumors(v) & 2u, 0u) << "round " << p.round();
    }
  }
}

TEST(MultiRumorPushPull, MarginalMatchesSingleRumorDistribution) {
  // 8 rumors from the same source on the same substrate: each rumor's
  // latency should be distributed like a single-rumor push-pull broadcast.
  const Graph g = gen::hypercube(7);
  std::vector<double> single, multi;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    single.push_back(
        static_cast<double>(run_push_pull(g, 0, seed).rounds));
    std::vector<RumorSpec> rumors(8, RumorSpec{0, 0});
    MultiRumorPushPull p(g, rumors, seed + 1000);
    const MultiRumorResult r = p.run();
    for (Round lat : r.latency) multi.push_back(static_cast<double>(lat));
  }
  const Summary ss = Summary::of(single);
  const Summary ms = Summary::of(multi);
  EXPECT_NEAR(ss.mean, ms.mean, 5 * (ss.stderr_mean + ms.stderr_mean) + 0.5);
}

TEST(MultiRumorVisitExchange, SingleRumorCompletes) {
  const Graph g = gen::cycle(24);
  MultiRumorVisitExchange p(g, {{0, 0}}, 7);
  const MultiRumorResult r = p.run();
  EXPECT_TRUE(r.completed);
}

TEST(MultiRumorVisitExchange, ManySourcesAllDelivered) {
  const Graph g = gen::grid2d(8, 8);
  std::vector<RumorSpec> rumors;
  for (Vertex s = 0; s < 16; ++s) rumors.push_back({s * 4, 0});
  MultiRumorVisitExchange p(g, rumors, 11);
  const MultiRumorResult r = p.run();
  ASSERT_TRUE(r.completed);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(p.vertex_rumors(v), (RumorMask{1} << 16) - 1);
  }
}

TEST(MultiRumorVisitExchange, MarginalMatchesSingleRumorDistribution) {
  Rng grng(5);
  const Graph g = gen::random_regular(128, 8, grng);
  std::vector<double> single, multi;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    single.push_back(
        static_cast<double>(run_visit_exchange(g, 0, seed).rounds));
    std::vector<RumorSpec> rumors(6, RumorSpec{0, 0});
    MultiRumorVisitExchange p(g, rumors, seed + 999);
    const MultiRumorResult r = p.run();
    for (Round lat : r.latency) multi.push_back(static_cast<double>(lat));
  }
  const Summary ss = Summary::of(single);
  const Summary ms = Summary::of(multi);
  EXPECT_NEAR(ss.mean, ms.mean, 5 * (ss.stderr_mean + ms.stderr_mean) + 0.5);
}

TEST(MultiRumorVisitExchange, PerpetualStreamSteadyLatency) {
  // Rumors released every 5 rounds from random sources: latencies should be
  // comparable for early and late releases (the perpetual-walk setting the
  // paper motivates with the stationary start).
  Rng grng(9);
  const Graph g = gen::random_regular(256, 10, grng);
  std::vector<RumorSpec> rumors;
  Rng source_rng(4);
  for (std::size_t i = 0; i < 20; ++i) {
    rumors.push_back({static_cast<Vertex>(source_rng.below(256)),
                      static_cast<Round>(5 * i)});
  }
  std::vector<double> early, late;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    MultiRumorVisitExchange p(g, rumors, seed);
    const MultiRumorResult r = p.run();
    ASSERT_TRUE(r.completed);
    for (std::size_t i = 0; i < 10; ++i) {
      early.push_back(static_cast<double>(r.latency[i]));
    }
    for (std::size_t i = 10; i < 20; ++i) {
      late.push_back(static_cast<double>(r.latency[i]));
    }
  }
  const Summary se = Summary::of(early);
  const Summary sl = Summary::of(late);
  EXPECT_NEAR(se.mean, sl.mean, 5 * (se.stderr_mean + sl.stderr_mean) + 1.0);
}

TEST(MultiRumorVisitExchange, AgentsCarryRumorsAcrossReleases) {
  // After completion every agent holds every rumor (phase B absorbs all).
  const Graph g = gen::complete(32);
  MultiRumorVisitExchange p(g, {{0, 0}, {1, 3}}, 13);
  const MultiRumorResult r = p.run();
  ASSERT_TRUE(r.completed);
  // One more round so agents standing anywhere absorb the final state.
  p.step();
  for (Agent a = 0; a < p.agents().count(); ++a) {
    EXPECT_EQ(p.agent_rumors(a), 3u);
  }
}

using MultiRumorDeathTest = ::testing::Test;

TEST(MultiRumorDeathTest, RejectsTooManyRumors) {
  const Graph g = gen::complete(8);
  std::vector<RumorSpec> rumors(65, RumorSpec{0, 0});
  EXPECT_DEATH(MultiRumorPushPull(g, rumors, 1), "precondition");
}

TEST(MultiRumorDeathTest, RejectsBadSource) {
  const Graph g = gen::complete(8);
  EXPECT_DEATH(MultiRumorVisitExchange(g, {{99, 0}}, 1), "precondition");
}

}  // namespace
}  // namespace rumor

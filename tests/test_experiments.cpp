// Experiments harness: spec construction, trial running, determinism,
// report formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/scaling.hpp"
#include "experiments/report.hpp"
#include "experiments/specs.hpp"
#include "experiments/trials.hpp"

namespace rumor {
namespace {

TEST(GraphSpec, MakesEveryFamily) {
  Rng rng(1);
  const std::vector<GraphSpec> specs = {
      {Family::star, 8},
      {Family::double_star, 8},
      {Family::heavy_tree, 15},
      {Family::siamese, 15},
      {Family::cycle_stars_cliques, 3},
      {Family::complete, 8},
      {Family::cycle, 8},
      {Family::path, 8},
      {Family::grid, 3, 4},
      {Family::torus, 3, 4},
      {Family::hypercube, 4},
      {Family::circulant, 12, 2},
      {Family::clique_ring, 4, 3},
      {Family::clique_path, 4, 3},
      {Family::random_regular, 16, 4},
      {Family::erdos_renyi, 32, 0, 0.3},
      {Family::barbell, 4},
      {Family::star_of_cliques, 3, 3},
      {Family::binary_tree, 15},
  };
  for (const auto& spec : specs) {
    const Graph g = spec.make(rng);
    EXPECT_GT(g.num_vertices(), 0u) << spec.name();
    EXPECT_GT(g.num_edges(), 0u) << spec.name();
    EXPECT_FALSE(spec.name().empty());
  }
}

TEST(GraphSpec, NamesAreDescriptive) {
  EXPECT_EQ((GraphSpec{Family::star, 64}).name(), "star(leaves=64)");
  EXPECT_EQ((GraphSpec{Family::random_regular, 128, 8}).name(),
            "random_regular(n=128,d=8)");
  EXPECT_TRUE((GraphSpec{Family::random_regular, 128, 8}).is_random());
  EXPECT_FALSE((GraphSpec{Family::star, 64}).is_random());
}

TEST(ProtocolSpec, DefaultsAndNames) {
  EXPECT_EQ(default_spec(Protocol::push).name(), "push");
  EXPECT_EQ(default_spec(Protocol::push_pull).name(), "push-pull");
  EXPECT_EQ(default_spec(Protocol::visit_exchange).name(), "visit-exchange");
  EXPECT_EQ(default_spec(Protocol::meet_exchange).name(), "meet-exchange");
  EXPECT_EQ(default_spec(Protocol::hybrid).name(), "hybrid");
  EXPECT_EQ(default_spec(Protocol::frog).name(), "frog");
  EXPECT_EQ(default_spec(Protocol::dynamic_agent).name(), "dynamic-agent");
  EXPECT_EQ(default_spec(Protocol::multi_push_pull).name(),
            "multi-push-pull");
  EXPECT_EQ(default_spec(Protocol::multi_visit_exchange).name(),
            "multi-visit-exchange");
  EXPECT_EQ(default_spec(Protocol::async_push_pull).name(), "async");
  // meet-exchange defaults to the paper's auto-lazy convention.
  EXPECT_EQ(default_spec(Protocol::meet_exchange).walk().lazy,
            LazyMode::auto_bipartite);
  EXPECT_EQ(default_spec(Protocol::visit_exchange).walk().lazy,
            LazyMode::never);
}

TEST(RunProtocol, EveryRegisteredSimulatorProducesCompletedRuns) {
  Rng rng(2);
  const Graph g = (GraphSpec{Family::complete, 48}).make(rng);
  for (const SimulatorEntry& entry : SimulatorRegistry::instance().all()) {
    const TrialResult outcome =
        run_protocol(g, default_spec(entry.id), 0, 7);
    EXPECT_TRUE(outcome.completed) << entry.name;
    EXPECT_GT(outcome.rounds, 0.0) << entry.name;
  }
}

TEST(RunProtocol, TrialResultCarriesAgentMilestoneAndCurve) {
  Rng rng(6);
  const Graph g = (GraphSpec{Family::circulant, 96, 3}).make(rng);
  ProtocolSpec spec = default_spec(Protocol::visit_exchange);
  spec.walk().trace.informed_curve = true;
  const TrialResult r = run_protocol(g, spec, 0, 11);
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.agent_rounds, 0.0);
  EXPECT_LE(r.agent_rounds, r.rounds);  // milestone recorded by completion
  ASSERT_EQ(r.informed_curve.size(), static_cast<std::size_t>(r.rounds) + 1);
  EXPECT_EQ(r.informed_curve.back(), g.num_vertices());
}

TEST(Trials, DeterministicAcrossRuns) {
  Rng rng(3);
  const Graph g = (GraphSpec{Family::hypercube, 6}).make(rng);
  const auto spec = default_spec(Protocol::push);
  const TrialSet a = run_trials(g, spec, 0, 16, 42);
  const TrialSet b = run_trials(g, spec, 0, 16, 42);
  EXPECT_EQ(a.rounds, b.rounds);  // identical sample vectors
  EXPECT_EQ(a.incomplete, 0u);
}

TEST(Trials, DifferentSeedsGiveDifferentSamples) {
  Rng rng(4);
  const Graph g = (GraphSpec{Family::complete, 64}).make(rng);
  const auto spec = default_spec(Protocol::push);
  const TrialSet a = run_trials(g, spec, 0, 16, 1);
  const TrialSet b = run_trials(g, spec, 0, 16, 2);
  EXPECT_NE(a.rounds, b.rounds);
}

TEST(Trials, FreshGraphModeDeterministic) {
  const GraphSpec gspec{Family::random_regular, 64, 6};
  const auto spec = default_spec(Protocol::push_pull);
  const TrialSet a = run_trials_fresh_graph(gspec, spec, 0, 8, 99);
  const TrialSet b = run_trials_fresh_graph(gspec, spec, 0, 8, 99);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Trials, SummaryMatchesSamples) {
  Rng rng(5);
  const Graph g = (GraphSpec{Family::complete, 32}).make(rng);
  const TrialSet set = run_trials(g, default_spec(Protocol::push), 0, 20, 7);
  const Summary s = set.summary();
  EXPECT_EQ(s.count, 20u);
  EXPECT_GE(s.min, 1.0);
  EXPECT_LE(s.min, s.median);
  EXPECT_LE(s.median, s.max);
}

TEST(Scaling, SeriesAccessors) {
  ScalingSeries series{"push", {{64, Summary::of(std::vector<double>{10, 12})},
                                {128, Summary::of(std::vector<double>{13})}}};
  EXPECT_EQ(series.sizes(), (std::vector<double>{64, 128}));
  EXPECT_EQ(series.means(), (std::vector<double>{11, 13}));
}

TEST(Scaling, RatioBoundedDetectsConstantFactor) {
  auto mk = [](std::vector<std::pair<double, double>> pts,
               std::string label) {
    ScalingSeries s{std::move(label), {}};
    for (auto [n, mean] : pts) {
      s.points.push_back({n, Summary::of(std::vector<double>{mean})});
    }
    return s;
  };
  const auto a = mk({{64, 10}, {128, 12}, {256, 14}}, "a");
  const auto b = mk({{64, 21}, {128, 25}, {256, 30}}, "b");  // ~2.1x of a
  EXPECT_TRUE(ratio_bounded(a, b, 1.2));
  EXPECT_NEAR(max_ratio(b, a), 2.14, 0.03);
  const auto diverging = mk({{64, 10}, {128, 40}, {256, 160}}, "c");
  EXPECT_FALSE(ratio_bounded(diverging, a, 2.0));
}

TEST(Scaling, WithinAdditiveLog) {
  auto mk = [](std::vector<std::pair<double, double>> pts) {
    ScalingSeries s{"s", {}};
    for (auto [n, mean] : pts) {
      s.points.push_back({n, Summary::of(std::vector<double>{mean})});
    }
    return s;
  };
  const auto slow = mk({{64, 30}, {256, 40}});
  const auto fast = mk({{64, 20}, {256, 25}});
  EXPECT_TRUE(within_additive_log(slow, fast, 3.0));   // 3 ln 64 ≈ 12.5
  EXPECT_FALSE(within_additive_log(slow, fast, 0.5));  // 0.5 ln 64 ≈ 2.1
}

TEST(Report, FormatsMeanPm) {
  Summary s = Summary::of(std::vector<double>{10, 12, 14});
  const std::string text = fmt_mean_pm(s, 1);
  EXPECT_NE(text.find("12.0"), std::string::npos);
  EXPECT_NE(text.find("±"), std::string::npos);
}

TEST(Report, PrintClaimReturnsVerdict) {
  EXPECT_TRUE(print_claim(true, "claim", "measured"));
  EXPECT_FALSE(print_claim(false, "claim", "measured"));
}

}  // namespace
}  // namespace rumor

// FairShareQueue semantics: round-robin rotation across clients, FIFO jobs
// within a client, scenario-major trial order within a job, pending-budget
// backpressure with in-flight accounting, and cancellation dropping only
// the never-claimed remainder. All deterministic — no threads except the
// close() wakeup test.
#include <gtest/gtest.h>

#include <thread>

#include "serve/fairshare.hpp"

namespace rumor::serve {
namespace {

std::vector<std::vector<std::uint32_t>> trials(
    std::initializer_list<std::uint32_t> per_scenario) {
  std::vector<std::vector<std::uint32_t>> pending;
  for (const std::uint32_t count : per_scenario) {
    std::vector<std::uint32_t> scenario;
    for (std::uint32_t t = 0; t < count; ++t) scenario.push_back(t);
    pending.push_back(std::move(scenario));
  }
  return pending;
}

TEST(ServeFairShare, RoundRobinAlternatesBetweenClients) {
  FairShareQueue queue(1000);
  queue.add_job("alice", 1, trials({4}));
  queue.add_job("bob", 2, trials({4}));
  // A 4-trial job per client: claims must strictly alternate, so neither
  // client waits for the other's whole job (the no-starvation property).
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 8; ++i) {
    const auto claim = queue.try_claim();
    ASSERT_TRUE(claim);
    order.push_back(claim->job);
    queue.complete(*claim);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 1, 2, 1, 2, 1, 2}));
  EXPECT_FALSE(queue.try_claim());
}

TEST(ServeFairShare, LateJoinerGetsItsShareImmediately) {
  FairShareQueue queue(1000);
  queue.add_job("alice", 1, trials({6}));
  auto first = queue.try_claim();
  ASSERT_TRUE(first);
  EXPECT_EQ(first->job, 1u);
  queue.add_job("bob", 2, trials({2}));
  // bob joined after alice started draining: claims alternate from here on,
  // so his 2-trial job finishes within 4 claims while alice's 6-trial job
  // is still going — a late joiner is never queued behind a whole job.
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 4; ++i) {
    const auto claim = queue.try_claim();
    ASSERT_TRUE(claim);
    order.push_back(claim->job);
  }
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 1, 2}));
}

TEST(ServeFairShare, WithinClientJobsAreFifoAndScenarioMajor) {
  FairShareQueue queue(1000);
  queue.add_job("alice", 1, trials({2, 2}));
  queue.add_job("alice", 2, trials({1}));
  std::vector<Claim> order;
  while (const auto claim = queue.try_claim()) order.push_back(*claim);
  ASSERT_EQ(order.size(), 5u);
  // Job 1 drains fully first (scenario 0 then scenario 1), then job 2.
  EXPECT_EQ(order[0], (Claim{1, 0, 0}));
  EXPECT_EQ(order[1], (Claim{1, 0, 1}));
  EXPECT_EQ(order[2], (Claim{1, 1, 0}));
  EXPECT_EQ(order[3], (Claim{1, 1, 1}));
  EXPECT_EQ(order[4], (Claim{2, 0, 0}));
}

TEST(ServeFairShare, BudgetCountsQueuedAndInFlightUntilComplete) {
  FairShareQueue queue(4);
  EXPECT_FALSE(queue.would_exceed("alice", 4));
  EXPECT_TRUE(queue.would_exceed("alice", 5));
  queue.add_job("alice", 1, trials({3}));
  EXPECT_EQ(queue.pending("alice"), 3u);
  EXPECT_TRUE(queue.would_exceed("alice", 2));   // 3 + 2 > 4
  EXPECT_FALSE(queue.would_exceed("alice", 1));  // 3 + 1 == 4
  // Budgets are per client: bob's headroom is untouched by alice's job.
  EXPECT_FALSE(queue.would_exceed("bob", 4));
  // Claiming does NOT release budget — the trial is in flight, the
  // client's work is still in the system.
  std::vector<Claim> claims;
  while (const auto claim = queue.try_claim()) claims.push_back(*claim);
  ASSERT_EQ(claims.size(), 3u);
  EXPECT_EQ(queue.pending("alice"), 3u);
  EXPECT_TRUE(queue.would_exceed("alice", 2));
  // complete() is what frees the slots, even after the job's claim queue
  // itself was retired.
  queue.complete(claims[0]);
  queue.complete(claims[1]);
  EXPECT_EQ(queue.pending("alice"), 1u);
  EXPECT_FALSE(queue.would_exceed("alice", 3));
}

TEST(ServeFairShare, CancelDropsOnlyTheNeverClaimedTrials) {
  FairShareQueue queue(100);
  queue.add_job("alice", 1, trials({4}));
  const auto in_flight = queue.try_claim();
  ASSERT_TRUE(in_flight);
  EXPECT_EQ(queue.cancel_job(1), 3u);  // 4 queued - 1 claimed
  EXPECT_EQ(queue.pending("alice"), 1u);  // the in-flight one
  EXPECT_FALSE(queue.try_claim());
  queue.complete(*in_flight);
  EXPECT_EQ(queue.pending("alice"), 0u);
  EXPECT_EQ(queue.cancel_job(1), 0u);  // idempotent
  EXPECT_EQ(queue.cancel_job(99), 0u);  // unknown job
}

TEST(ServeFairShare, SharesReportPerClientAccounting) {
  FairShareQueue queue(100);
  queue.add_job("alice", 1, trials({2}));
  queue.add_job("bob", 2, trials({3}));
  const auto claim = queue.try_claim();
  ASSERT_TRUE(claim);
  const auto shares = queue.shares();
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0].client, "alice");
  EXPECT_EQ(shares[0].pending, 2u);
  EXPECT_EQ(shares[0].claimed, 1u);
  EXPECT_EQ(shares[1].client, "bob");
  EXPECT_EQ(shares[1].pending, 3u);
  EXPECT_EQ(shares[1].claimed, 0u);
}

TEST(ServeFairShare, CloseWakesBlockedWaiters) {
  FairShareQueue queue(100);
  std::thread waiter([&queue] {
    // Blocks until close(): a claim must not be invented.
    EXPECT_FALSE(queue.wait_claim());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  waiter.join();
  // After close, even queued work is no longer handed out.
  queue.add_job("alice", 1, trials({1}));
  EXPECT_FALSE(queue.wait_claim());
}

}  // namespace
}  // namespace rumor::serve

// Differential tests: the optimized simulators vs. the naive reference
// transcriptions of Section 3. The optimizations (saturation retirement,
// frontier iteration, alias placement) are argued law-preserving in
// DESIGN.md; these tests check that claim empirically by comparing
// broadcast-time distributions on several graph shapes.
#include <gtest/gtest.h>

#include <vector>

#include "core/meet_exchange.hpp"
#include "core/push.hpp"
#include "core/push_pull.hpp"
#include "core/reference.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"
#include "support/stats.hpp"

namespace rumor {
namespace {

constexpr Round kCutoff = 1 << 20;

// Means must agree within `sigmas` combined standard errors plus a small
// absolute epsilon (guards the zero-variance deterministic cases).
void expect_distribution_match(const std::vector<double>& a,
                               const std::vector<double>& b,
                               double sigmas = 5.0) {
  const Summary sa = Summary::of(a);
  const Summary sb = Summary::of(b);
  EXPECT_NEAR(sa.mean, sb.mean,
              sigmas * (sa.stderr_mean + sb.stderr_mean) + 0.25)
      << "optimized mean " << sa.mean << " vs reference mean " << sb.mean;
}

TEST(Differential, PushOnStar) {
  const Graph g = gen::star(128);
  std::vector<double> fast, ref;
  Rng ref_rng(99);
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    fast.push_back(static_cast<double>(run_push(g, 1, seed).rounds));
    ref.push_back(static_cast<double>(reference_push(g, 1, ref_rng, kCutoff)));
  }
  expect_distribution_match(fast, ref);
}

TEST(Differential, PushOnCompleteGraph) {
  const Graph g = gen::complete(128);
  std::vector<double> fast, ref;
  Rng ref_rng(7);
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    fast.push_back(static_cast<double>(run_push(g, 0, seed).rounds));
    ref.push_back(static_cast<double>(reference_push(g, 0, ref_rng, kCutoff)));
  }
  expect_distribution_match(fast, ref);
}

TEST(Differential, PushOnHeavyTree) {
  const Graph g = gen::heavy_binary_tree(63);
  std::vector<double> fast, ref;
  Rng ref_rng(13);
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    fast.push_back(static_cast<double>(run_push(g, 62, seed).rounds));
    ref.push_back(
        static_cast<double>(reference_push(g, 62, ref_rng, kCutoff)));
  }
  expect_distribution_match(fast, ref);
}

TEST(Differential, PushPullOnDoubleStar) {
  const Graph g = gen::double_star(48);
  std::vector<double> fast, ref;
  Rng ref_rng(31);
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    fast.push_back(static_cast<double>(run_push_pull(g, 2, seed).rounds));
    ref.push_back(
        static_cast<double>(reference_push_pull(g, 2, ref_rng, kCutoff)));
  }
  expect_distribution_match(fast, ref);
}

TEST(Differential, PushPullOnHypercube) {
  const Graph g = gen::hypercube(7);
  std::vector<double> fast, ref;
  Rng ref_rng(43);
  for (std::uint64_t seed = 0; seed < 150; ++seed) {
    fast.push_back(static_cast<double>(run_push_pull(g, 0, seed).rounds));
    ref.push_back(
        static_cast<double>(reference_push_pull(g, 0, ref_rng, kCutoff)));
  }
  expect_distribution_match(fast, ref);
}

TEST(Differential, VisitExchangeOnCycle) {
  const Graph g = gen::cycle(48);
  std::vector<double> fast, ref;
  Rng ref_rng(51);
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    fast.push_back(
        static_cast<double>(run_visit_exchange(g, 0, seed).rounds));
    ref.push_back(static_cast<double>(
        reference_visit_exchange(g, 0, 48, Laziness::none, ref_rng, kCutoff)));
  }
  expect_distribution_match(fast, ref);
}

TEST(Differential, VisitExchangeOnHeavyTree) {
  const Graph g = gen::heavy_binary_tree(31);
  std::vector<double> fast, ref;
  Rng ref_rng(61);
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    fast.push_back(
        static_cast<double>(run_visit_exchange(g, 0, seed).rounds));
    ref.push_back(static_cast<double>(
        reference_visit_exchange(g, 0, 31, Laziness::none, ref_rng, kCutoff)));
  }
  expect_distribution_match(fast, ref);
}

TEST(Differential, MeetExchangeOnCompleteGraph) {
  const Graph g = gen::complete(48);
  std::vector<double> fast, ref;
  Rng ref_rng(71);
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    fast.push_back(
        static_cast<double>(run_meet_exchange(g, 0, seed).rounds));
    ref.push_back(static_cast<double>(
        reference_meet_exchange(g, 0, 48, Laziness::none, ref_rng, kCutoff)));
  }
  expect_distribution_match(fast, ref);
}

TEST(Differential, MeetExchangeLazyOnStar) {
  const Graph g = gen::star(32);
  std::vector<double> fast, ref;
  Rng ref_rng(81);
  for (std::uint64_t seed = 0; seed < 120; ++seed) {
    fast.push_back(static_cast<double>(
        run_meet_exchange(g, 1, seed).rounds));  // auto-lazy: bipartite
    ref.push_back(static_cast<double>(
        reference_meet_exchange(g, 1, 33, Laziness::half, ref_rng, kCutoff)));
  }
  expect_distribution_match(fast, ref);
}

TEST(Differential, DeterministicTwoPathAgreesExactly) {
  // On the 2-path every push trajectory is forced: both implementations
  // must report exactly one round regardless of seeds.
  const Graph g = gen::path(2);
  Rng ref_rng(5);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    EXPECT_EQ(run_push(g, 0, seed).rounds, 1u);
    EXPECT_EQ(reference_push(g, 0, ref_rng, kCutoff), 1u);
    EXPECT_EQ(run_push_pull(g, 0, seed).rounds, 1u);
    EXPECT_EQ(reference_push_pull(g, 0, ref_rng, kCutoff), 1u);
  }
}

}  // namespace
}  // namespace rumor

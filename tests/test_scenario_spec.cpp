// Scenario API text round-trips: GraphSpec / ProtocolSpec / ScenarioSpec
// parse(name()) == original, for defaults and for non-default options, on
// every registered simulator and every graph family — plus parse error
// reporting.
#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "experiments/scenario.hpp"
#include "support/spec_text.hpp"

namespace rumor {
namespace {

// ---- spec_text substrate ---------------------------------------------

TEST(SpecText, ParseCallForms) {
  auto bare = spec_text::parse_call("push");
  ASSERT_TRUE(bare);
  EXPECT_EQ(bare->head, "push");
  EXPECT_TRUE(bare->args.empty());

  auto call = spec_text::parse_call(" frog( frogs = 2 , lazy=half ) ");
  ASSERT_TRUE(call);
  EXPECT_EQ(call->head, "frog");
  ASSERT_EQ(call->args.size(), 2u);
  EXPECT_EQ(call->args[0].key, "frogs");
  EXPECT_EQ(call->args[0].value, "2");
  EXPECT_EQ(call->args[1].key, "lazy");
  EXPECT_EQ(call->args[1].value, "half");
}

TEST(SpecText, ParseCallErrors) {
  std::string error;
  EXPECT_FALSE(spec_text::parse_call("frog(frogs=2", &error));
  EXPECT_NE(error.find(")"), std::string::npos);
  EXPECT_FALSE(spec_text::parse_call("frog(frogs)", &error));
  EXPECT_FALSE(spec_text::parse_call("", &error));
  EXPECT_FALSE(spec_text::parse_call("fr og(a=1)", &error));
}

TEST(SpecText, DoubleFormattingRoundTripsAndStaysShort) {
  EXPECT_EQ(spec_text::fmt_double(0.1), "0.1");
  EXPECT_EQ(spec_text::fmt_double(2.0), "2");
  EXPECT_EQ(spec_text::fmt_double(0.0625), "0.0625");
  for (double v : {0.1, 1.0 / 3.0, 0.25, 3.14159265358979, 1e-9, 12345.678}) {
    const auto parsed = spec_text::parse_double(spec_text::fmt_double(v));
    ASSERT_TRUE(parsed);
    EXPECT_EQ(*parsed, v);
  }
}

// ---- GraphSpec --------------------------------------------------------

TEST(GraphSpecText, EveryFamilyRoundTrips) {
  const std::vector<GraphSpec> specs = {
      {Family::star, 8},
      {Family::double_star, 8},
      {Family::heavy_tree, 15},
      {Family::siamese, 15},
      {Family::cycle_stars_cliques, 3},
      {Family::complete, 8},
      {Family::cycle, 8},
      {Family::path, 8},
      {Family::grid, 3, 4},
      {Family::torus, 3, 4},
      {Family::hypercube, 4},
      {Family::circulant, 12, 2},
      {Family::clique_ring, 4, 3},
      {Family::clique_path, 4, 3},
      {Family::random_regular, 16, 4},
      {Family::erdos_renyi, 32, 0, 0.3},
      {Family::barbell, 4},
      {Family::star_of_cliques, 3, 3},
      {Family::binary_tree, 15},
  };
  for (const GraphSpec& spec : specs) {
    std::string error;
    const auto parsed = GraphSpec::parse(spec.name(), &error);
    ASSERT_TRUE(parsed) << spec.name() << ": " << error;
    EXPECT_EQ(*parsed, spec) << spec.name();
  }
}

TEST(GraphSpecText, KeyedParameterNames) {
  EXPECT_EQ((GraphSpec{Family::grid, 3, 4}).name(), "grid(rows=3,cols=4)");
  EXPECT_EQ((GraphSpec{Family::erdos_renyi, 32, 0, 0.25}).name(),
            "erdos_renyi(n=32,p=0.25)");
  const auto parsed = GraphSpec::parse("circulant(n=4096, k=8)");
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->family, Family::circulant);
  EXPECT_EQ(parsed->a, 4096u);
  EXPECT_EQ(parsed->b, 8u);
}

TEST(GraphSpecText, RejectsUnknownFamilyAndParameters) {
  std::string error;
  EXPECT_FALSE(GraphSpec::parse("moebius(n=8)", &error));
  EXPECT_NE(error.find("moebius"), std::string::npos);
  EXPECT_FALSE(GraphSpec::parse("star(petals=8)", &error));
  EXPECT_NE(error.find("petals"), std::string::npos);
  EXPECT_FALSE(GraphSpec::parse("star", &error));  // missing leaves=
  EXPECT_FALSE(GraphSpec::parse("erdos_renyi(n=32,p=1.5)", &error));
}

// ---- ProtocolSpec -----------------------------------------------------

// Satellite regression: after the variant refactor, default_spec(p) must
// round-trip through parse(name()) for EVERY registered protocol — the
// bare name is the whole canonical form, and parsing it reproduces the
// registered defaults (including meet-exchange's auto-lazy convention).
TEST(ProtocolSpecText, DefaultSpecRoundTripsForEveryRegisteredProtocol) {
  for (const SimulatorEntry& entry : SimulatorRegistry::instance().all()) {
    const ProtocolSpec spec = default_spec(entry.id);
    EXPECT_EQ(spec.name(), entry.name);
    std::string error;
    const auto parsed = ProtocolSpec::parse(spec.name(), &error);
    ASSERT_TRUE(parsed) << entry.name << ": " << error;
    EXPECT_EQ(*parsed, spec) << entry.name;
  }
}

TEST(ProtocolSpecText, NonDefaultOptionsRoundTrip) {
  const std::vector<std::string> lines = {
      "push(loss=0.25)",
      "push(max_rounds=500,curve=on)",
      "push-pull(loss=0.1,inform_rounds=on)",
      "visit-exchange(alpha=0.25,lazy=always)",
      "visit-exchange(agents=128,placement=one_per_vertex)",
      "visit-exchange(placement=at_vertex,anchor=7,engine=scalar)",
      "visit-exchange(engine=counter)",
      "meet-exchange(engine=counter,alpha=0.5)",
      "meet-exchange(lazy=never,max_rounds=4000)",
      "hybrid(alpha=2,curve=on)",
      "frog(frogs=3,lazy=half,max_rounds=900)",
      "dynamic-agent(churn=0.05,loss_round=8,loss_fraction=0.5,alpha=0.5)",
      "multi-push-pull(rumors=16,interval=4)",
      "multi-visit-exchange(rumors=32,interval=2,alpha=0.5,lazy=auto)",
      "async(max_ticks=100000,pull=off)",
  };
  for (const std::string& line : lines) {
    std::string error;
    const auto spec = ProtocolSpec::parse(line, &error);
    ASSERT_TRUE(spec) << line << ": " << error;
    const std::string canonical = spec->name();
    const auto reparsed = ProtocolSpec::parse(canonical, &error);
    ASSERT_TRUE(reparsed) << canonical << ": " << error;
    EXPECT_EQ(*reparsed, *spec) << line << " -> " << canonical;
  }
}

TEST(ProtocolSpecText, ParsedOptionsReachTheOptionStructs) {
  const auto frog = ProtocolSpec::parse("frog(frogs=2,lazy=half)");
  ASSERT_TRUE(frog);
  EXPECT_EQ(frog->protocol, Protocol::frog);
  EXPECT_EQ(frog->frog().frogs_per_vertex, 2u);
  EXPECT_EQ(frog->frog().laziness, Laziness::half);

  const auto dynamic =
      ProtocolSpec::parse("dynamic-agent(churn=0.1,alpha=0.5)");
  ASSERT_TRUE(dynamic);
  EXPECT_EQ(dynamic->dynamic_agent().churn, 0.1);
  EXPECT_EQ(dynamic->dynamic_agent().walk.alpha, 0.5);
  EXPECT_EQ(dynamic->walk().alpha, 0.5);  // walk() reaches embedded options

  const auto multi = ProtocolSpec::parse("multi-visit-exchange(rumors=8)");
  ASSERT_TRUE(multi);
  EXPECT_EQ(multi->multi().rumor_count, 8u);

  const auto async_spec = ProtocolSpec::parse("async(pull=off)");
  ASSERT_TRUE(async_spec);
  EXPECT_FALSE(async_spec->async().pull_enabled);
}

TEST(ProtocolSpecText, RejectsUnknownProtocolsKeysAndBadValues) {
  std::string error;
  EXPECT_FALSE(ProtocolSpec::parse("teleport", &error));
  EXPECT_NE(error.find("teleport"), std::string::npos);
  EXPECT_FALSE(ProtocolSpec::parse("push(alpha=2)", &error));  // walk key
  EXPECT_FALSE(ProtocolSpec::parse("push(loss=1.5)", &error));
  EXPECT_FALSE(ProtocolSpec::parse("visit-exchange(lazy=maybe)", &error));
  EXPECT_FALSE(ProtocolSpec::parse("frog(frogs=0)", &error));
  EXPECT_FALSE(ProtocolSpec::parse("multi-push-pull(rumors=65)", &error));
  EXPECT_FALSE(ProtocolSpec::parse("async(pull=sometimes)", &error));
}

TEST(ProtocolSpecText, RangeChecksRejectNaN) {
  // Negated comparisons let NaN through (every comparison is false); the
  // parsers must use the positive form so user text cannot smuggle NaN
  // into a simulator precondition abort.
  std::string error;
  EXPECT_FALSE(ProtocolSpec::parse("push(loss=nan)", &error));
  EXPECT_FALSE(ProtocolSpec::parse("push-pull(loss=nan)", &error));
  EXPECT_FALSE(ProtocolSpec::parse("visit-exchange(alpha=nan)", &error));
  EXPECT_FALSE(ProtocolSpec::parse("dynamic-agent(churn=nan)", &error));
  EXPECT_FALSE(ProtocolSpec::parse("dynamic-agent(loss_fraction=nan)",
                                   &error));
  EXPECT_FALSE(GraphSpec::parse("erdos_renyi(n=32,p=nan)", &error));
  EXPECT_FALSE(GraphSpec::parse("erdos_renyi(n=32,p=0)", &error));
}

TEST(ProtocolSpecText, IntegerOverflowAndAnchorSentinelRejected) {
  std::string error;
  // strtoull clamps overflow to UINT64_MAX; the parser must reject, not
  // silently replace the literal with a different value.
  EXPECT_FALSE(ProtocolSpec::parse(
      "push(max_rounds=999999999999999999999999)", &error));
  EXPECT_FALSE(ScenarioSpec::parse(
      "complete(n=8) push trials=999999999999999999999999", &error));
  // Anchor values at or above the kNoVertex sentinel would truncate.
  EXPECT_FALSE(ProtocolSpec::parse(
      "visit-exchange(placement=at_vertex,anchor=4294967295)", &error));
}

TEST(ProtocolSpecText, MultiRumorRejectsOptionsItCannotHonor) {
  std::string error;
  // Neither multi simulator records traces; the visit variant honors the
  // agent substrate, the push-pull variant only the cutoff.
  EXPECT_FALSE(ProtocolSpec::parse("multi-visit-exchange(curve=on)", &error));
  EXPECT_FALSE(ProtocolSpec::parse("multi-push-pull(alpha=2)", &error));
  EXPECT_FALSE(ProtocolSpec::parse("multi-push-pull(curve=on)", &error));
  EXPECT_TRUE(ProtocolSpec::parse("multi-visit-exchange(alpha=2)", &error));
  EXPECT_TRUE(ProtocolSpec::parse("multi-push-pull(max_rounds=500)", &error));
}

TEST(ProtocolSpecText, FormattersNeverEmitKeysTheirParserRejects) {
  // A programmatically built spec must round-trip through name() even when
  // fields its set hook cannot express were mutated directly: the
  // formatter mirrors the set hook, so such fields are simply omitted.
  ProtocolSpec multi_visit = default_spec(Protocol::multi_visit_exchange);
  multi_visit.multi().walk.trace.informed_curve = true;  // not honored
  multi_visit.multi().walk.alpha = 0.5;                  // honored
  std::string error;
  const auto reparsed = ProtocolSpec::parse(multi_visit.name(), &error);
  ASSERT_TRUE(reparsed) << multi_visit.name() << ": " << error;
  EXPECT_EQ(reparsed->multi().walk.alpha, 0.5);

  ProtocolSpec multi_pp = default_spec(Protocol::multi_push_pull);
  multi_pp.multi().walk.alpha = 0.5;  // push-pull variant has no agents
  multi_pp.multi().walk.max_rounds = 700;
  const auto reparsed_pp = ProtocolSpec::parse(multi_pp.name(), &error);
  ASSERT_TRUE(reparsed_pp) << multi_pp.name() << ": " << error;
  EXPECT_EQ(reparsed_pp->multi().walk.max_rounds, 700u);
}

TEST(ProtocolSpecText, AlphaRejectsInfinity) {
  std::string error;
  EXPECT_FALSE(ProtocolSpec::parse("visit-exchange(alpha=inf)", &error));
  EXPECT_FALSE(ProtocolSpec::parse("visit-exchange(alpha=1e300)", &error));
}

// ---- ScenarioSpec -----------------------------------------------------

TEST(ScenarioSpecText, RoundTripsWithPlanAndLabel) {
  const std::vector<std::string> lines = {
      "star(leaves=8192) push source=1",
      "complete(n=64) visit-exchange",
      "random_regular(n=256,d=8) push-pull trials=50 seed=7 fresh=on",
      "heavy_tree(n=255) frog(frogs=2) source=254 label=frogs",
      "circulant(n=4096,k=8) meet-exchange(lazy=always) trials=5 "
      "label=lazy-meetx",
  };
  for (const std::string& line : lines) {
    std::string error;
    const auto spec = ScenarioSpec::parse(line, &error);
    ASSERT_TRUE(spec) << line << ": " << error;
    const auto reparsed = ScenarioSpec::parse(spec->name(), &error);
    ASSERT_TRUE(reparsed) << spec->name() << ": " << error;
    EXPECT_EQ(*reparsed, *spec) << line << " -> " << spec->name();
  }
}

TEST(ScenarioSpecText, DefaultPlanKeysAreOmitted) {
  const auto spec = ScenarioSpec::parse("complete(n=64) push");
  ASSERT_TRUE(spec);
  EXPECT_EQ(spec->name(), "complete(n=64) push");
  EXPECT_EQ(spec->plan.trials, 20u);
  EXPECT_EQ(spec->plan.seed, kDefaultMasterSeed);
  EXPECT_EQ(spec->plan.source, 0u);
  EXPECT_FALSE(spec->plan.fresh_graph);
}

TEST(ScenarioSpecText, RejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(ScenarioSpec::parse("complete(n=64)", &error));  // no protocol
  EXPECT_FALSE(ScenarioSpec::parse("complete(n=64) push bogus", &error));
  EXPECT_FALSE(ScenarioSpec::parse("complete(n=64) push cycles=9", &error));
  // '#' in a label would be stripped as a comment on file re-read.
  EXPECT_FALSE(ScenarioSpec::parse("complete(n=64) push label=a#b", &error));
  // fresh graphs only make sense for random families.
  EXPECT_FALSE(ScenarioSpec::parse("complete(n=64) push fresh=on", &error));
  EXPECT_NE(error.find("fresh"), std::string::npos);
}

}  // namespace
}  // namespace rumor

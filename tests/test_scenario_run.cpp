// Scenario execution: file parsing, the trial runner through the registry
// path (determinism as a pure function of (master seed, trial index) for
// every registered simulator), widened TrialSet payloads, source
// validation, and the Fig. 1(a) star separation end to end from spec text.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/registry.hpp"
#include "experiments/scenario.hpp"
#include "graph/generators.hpp"
#include "support/thread_pool.hpp"
#include "support/trial_arena.hpp"

namespace rumor {
namespace {

// ---- Scenario files ---------------------------------------------------

TEST(ScenarioFile, ParsesLinesSkipsCommentsAndBlanks) {
  std::istringstream in(
      "# header comment\n"
      "\n"
      "complete(n=32) push trials=4\n"
      "   \t \n"
      "star(leaves=64) visit-exchange trials=4 source=1  # trailing note\n");
  std::string error;
  const auto specs = parse_scenario_stream(in, &error);
  ASSERT_TRUE(specs) << error;
  ASSERT_EQ(specs->size(), 2u);
  EXPECT_EQ((*specs)[0].name(), "complete(n=32) push trials=4");
  EXPECT_EQ((*specs)[1].protocol.protocol, Protocol::visit_exchange);
  EXPECT_EQ((*specs)[1].plan.source, 1u);
}

TEST(ScenarioFile, ReportsErrorsWithLineNumbers) {
  std::istringstream in(
      "complete(n=32) push\n"
      "complete(n=32) teleport\n");
  std::string error;
  EXPECT_FALSE(parse_scenario_stream(in, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("teleport"), std::string::npos);
}

// ---- Registry-path determinism (satellite) ----------------------------
//
// The trial runner promises that sample i depends only on (master seed, i)
// — never on worker count or scheduling. Asserted here through the new
// registry path for EVERY registered simulator: the pooled samples must
// equal a serial re-derivation with a private arena.

TEST(RegistryTrials, SamplesAreAPureFunctionOfMasterSeedAndIndex) {
  Rng gen_rng(3);
  // Circulant with k=2 contains triangles: every protocol terminates
  // (meet-exchange's auto laziness resolves to non-lazy, still aperiodic).
  const Graph g = gen::circulant(48, 2);
  constexpr std::size_t kTrials = 12;
  constexpr std::uint64_t kMaster = 20260729ULL;
  for (const SimulatorEntry& entry : SimulatorRegistry::instance().all()) {
    const ProtocolSpec spec = default_spec(entry.id);
    const TrialSet pooled = run_trials(g, spec, 0, kTrials, kMaster);
    ASSERT_EQ(pooled.rounds.size(), kTrials);
    for (std::size_t i = 0; i < kTrials; ++i) {
      TrialArena fresh_arena;
      const TrialResult serial = run_protocol(
          g, spec, 0, derive_seed(kMaster, i), &fresh_arena);
      EXPECT_EQ(pooled.rounds[i], serial.rounds)
          << entry.name << " trial " << i;
      EXPECT_EQ(pooled.agent_rounds[i], serial.agent_rounds)
          << entry.name << " trial " << i;
    }
    // And the pooled run itself is reproducible.
    const TrialSet again = run_trials(g, spec, 0, kTrials, kMaster);
    EXPECT_EQ(pooled.rounds, again.rounds) << entry.name;
    EXPECT_EQ(pooled.incomplete, again.incomplete) << entry.name;
  }
}

// Same promise under heterogeneous transmission: the skip-sampling /
// batched-draw paths pull from counter-based Philox streams reseeded per
// trial, so sample i must still be a pure function of (master seed, i) for
// every simulator that accepts a contact rule.
TEST(RegistryTrials, HeterogeneousSamplesAreAPureFunctionOfSeedAndIndex) {
  const Graph g = gen::circulant(48, 2);
  constexpr std::size_t kTrials = 8;
  constexpr std::uint64_t kMaster = 424242ULL;
  for (const SimulatorEntry& entry : SimulatorRegistry::instance().all()) {
    const auto spec =
        ProtocolSpec::parse(std::string(entry.name) + "(tp=deg^-0.5)");
    if (!spec) continue;  // simulator takes no contact rule
    const TrialSet pooled = run_trials(g, *spec, 0, kTrials, kMaster);
    ASSERT_EQ(pooled.rounds.size(), kTrials);
    for (std::size_t i = 0; i < kTrials; ++i) {
      TrialArena fresh_arena;
      const TrialResult serial =
          run_protocol(g, *spec, 0, derive_seed(kMaster, i), &fresh_arena);
      EXPECT_EQ(pooled.rounds[i], serial.rounds)
          << entry.name << " trial " << i;
      EXPECT_EQ(pooled.agent_rounds[i], serial.agent_rounds)
          << entry.name << " trial " << i;
    }
    const TrialSet again = run_trials(g, *spec, 0, kTrials, kMaster);
    EXPECT_EQ(pooled.rounds, again.rounds) << entry.name;
  }
}

TEST(RegistryTrials, FreshGraphSamplesAreAPureFunctionOfSeedAndIndex) {
  const GraphSpec gspec{Family::random_regular, 64, 6};
  const ProtocolSpec spec = default_spec(Protocol::push_pull);
  constexpr std::uint64_t kMaster = 99;
  const TrialSet pooled = run_trials_fresh_graph(gspec, spec, 0, 8, kMaster);
  for (std::size_t i = 0; i < 8; ++i) {
    Rng graph_rng(derive_seed(kMaster ^ kGraphSeedSalt, i));
    const Graph g = gspec.make(graph_rng);
    TrialArena fresh_arena;
    const TrialResult serial =
        run_protocol(g, spec, 0, derive_seed(kMaster, i), &fresh_arena);
    EXPECT_EQ(pooled.rounds[i], serial.rounds) << "trial " << i;
  }
}

// ---- Widened TrialSet -------------------------------------------------

TEST(TrialSetPayload, CarriesAgentRoundsAndOptionalCurves) {
  Rng rng(5);
  const Graph g = gen::circulant(96, 3);
  ProtocolSpec spec = default_spec(Protocol::visit_exchange);
  const TrialSet plain = run_trials(g, spec, 0, 6, 7);
  ASSERT_EQ(plain.agent_rounds.size(), 6u);
  EXPECT_TRUE(plain.informed_curves.empty());  // not traced
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_GT(plain.agent_rounds[i], 0.0);
    EXPECT_LE(plain.agent_rounds[i], plain.rounds[i]);
  }
  EXPECT_GT(plain.agent_summary().mean, 0.0);

  spec.walk().trace.informed_curve = true;
  const TrialSet traced = run_trials(g, spec, 0, 6, 7);
  ASSERT_EQ(traced.informed_curves.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    ASSERT_EQ(traced.informed_curves[i].size(),
              static_cast<std::size_t>(traced.rounds[i]) + 1);
    EXPECT_EQ(traced.informed_curves[i].back(), g.num_vertices());
  }
  // Tracing must not perturb the sampled trajectory.
  EXPECT_EQ(traced.rounds, plain.rounds);
}

// ---- Source validation (satellite) ------------------------------------

TEST(TrialSourceValidation, RunScenarioReportsOutOfRangeSourceGracefully) {
  // Scenario files are user input: a bad source must come back as an
  // error string (the CLI's "line N" contract), not a process abort.
  const auto spec = ScenarioSpec::parse("complete(n=16) push source=99");
  ASSERT_TRUE(spec);
  std::string error;
  EXPECT_FALSE(run_scenario(*spec, &error));
  EXPECT_NE(error.find("source=99"), std::string::npos);
  EXPECT_NE(error.find("n=16"), std::string::npos);
  EXPECT_FALSE(run_scenarios({*spec}, &error));

  // The placement anchor is user input through the same spec grammar.
  const auto anchored = ScenarioSpec::parse(
      "complete(n=16) visit-exchange(placement=at_vertex,anchor=99)");
  ASSERT_TRUE(anchored);
  EXPECT_FALSE(run_scenario(*anchored, &error));
  EXPECT_NE(error.find("anchor=99"), std::string::npos);
}

TEST(TrialSourceValidation, GraphSpecsRequireEveryDeclaredParameter) {
  // A missing second parameter must fail at parse time, not abort later
  // inside the generator with a defaulted-to-zero size.
  std::string error;
  EXPECT_FALSE(GraphSpec::parse("grid(rows=3)", &error));
  EXPECT_NE(error.find("cols"), std::string::npos);
  EXPECT_FALSE(GraphSpec::parse("erdos_renyi(n=32)", &error));
  EXPECT_NE(error.find("p"), std::string::npos);
  EXPECT_FALSE(GraphSpec::parse("random_regular(n=64)", &error));
}

TEST(TrialSourceValidation, FixedGraphRejectsOutOfRangeSource) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Rng rng(8);
  const Graph g = gen::complete(16);
  const ProtocolSpec spec = default_spec(Protocol::push);
  EXPECT_DEATH((void)run_trials(g, spec, 16, 4, 1), "precondition");
}

TEST(TrialSourceValidation, FreshGraphValidatesSourceAgainstEveryDraw) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Every draw has exactly 64 vertices; source 64 is out of range in all
  // of them and must abort instead of indexing out of bounds.
  const GraphSpec gspec{Family::random_regular, 64, 6};
  const ProtocolSpec spec = default_spec(Protocol::push);
  EXPECT_DEATH((void)run_trials_fresh_graph(gspec, spec, 64, 4, 1),
               "precondition");
}

// ---- End-to-end: Fig. 1(a) from spec text -----------------------------

TEST(ScenarioEndToEnd, Fig1aStarSeparationFromSpecText) {
  std::istringstream in(
      "# star family, leaf source (Fig. 1a at reduced size)\n"
      "star(leaves=1024) push           source=1 trials=8 label=push\n"
      "star(leaves=1024) push-pull      source=1 trials=8 label=ppull\n"
      "star(leaves=1024) visit-exchange source=1 trials=8 label=visitx\n"
      "star(leaves=1024) meet-exchange  source=1 trials=8 label=meetx\n");
  std::string error;
  const auto specs = parse_scenario_stream(in, &error);
  ASSERT_TRUE(specs) << error;
  const auto run = run_scenarios(*specs, &error);
  ASSERT_TRUE(run) << error;
  const std::vector<ScenarioResult>& results = *run;
  ASSERT_EQ(results.size(), 4u);
  const double push = results[0].set.summary().mean;
  const double ppull = results[1].set.summary().mean;
  const double visitx = results[2].set.summary().mean;
  const double meetx = results[3].set.summary().mean;
  for (const ScenarioResult& r : results) {
    EXPECT_EQ(r.set.incomplete, 0u) << r.spec.display_label();
    EXPECT_EQ(r.n, 1025u);
  }
  // Lemma 2: push pays Omega(n log n), push-pull finishes in 2, the walk
  // protocols are logarithmic. 10x is a very loose floor for n = 1024
  // (measured separation is ~100x) — this guards the separation, not the
  // constant.
  EXPECT_LE(ppull, 2.0);
  EXPECT_GT(push, 10.0 * visitx);
  EXPECT_GT(push, 10.0 * meetx);

  // The report renders one row per scenario.
  const std::string table = scenario_table(results);
  EXPECT_NE(table.find("push"), std::string::npos);
  EXPECT_NE(table.find("visitx"), std::string::npos);
  std::ostringstream csv;
  write_scenario_csv(csv, results);
  EXPECT_NE(csv.str().find("label,graph,protocol"), std::string::npos);
  EXPECT_NE(csv.str().find("meetx"), std::string::npos);
}

}  // namespace
}  // namespace rumor

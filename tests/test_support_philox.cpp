// Counter-based RNG tests: Random123 known-answer vectors, the
// cross-platform pin of the addressable philox_draw outputs, stream
// addressability (buffered stream words == direct block computations, which
// also proves the SIMD refill matches the scalar round function),
// independence across the (trial, round, slot) coordinate axes, the
// deterministic fast_log2f, and the statistical smoke checks.
//
// The *Statistical tests are gated out of the Debug CI job (ctest -E
// PhiloxStatistical) — they draw hundreds of thousands of words and only
// need to run once per platform, in Release.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "support/philox.hpp"

namespace rumor {
namespace {

// The three Random123 reference rows (also static_asserted at compile time
// in philox.cpp; repeated here so a toolchain that elides the asserts still
// exercises them and failures show up as test diffs, not build errors).
TEST(Philox, MatchesRandom123KnownAnswerVectors) {
  EXPECT_EQ(philox4x32({0u, 0u, 0u, 0u}, 0u, 0u),
            (std::array<std::uint32_t, 4>{0x6627E8D5u, 0xE169C58Du,
                                          0xBC57AC4Cu, 0x9B00DBD8u}));
  EXPECT_EQ(
      philox4x32({0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu},
                 0xFFFFFFFFu, 0xFFFFFFFFu),
      (std::array<std::uint32_t, 4>{0x408F276Du, 0x41C83B0Eu, 0xA20BC7C6u,
                                    0x6D5451FDu}));
  EXPECT_EQ(
      philox4x32({0x243F6A88u, 0x85A308D3u, 0x13198A2Eu, 0x03707344u},
                 0xA4093822u, 0x299F31D0u),
      (std::array<std::uint32_t, 4>{0xD16CFE09u, 0x94FDCCEBu, 0x5001E420u,
                                    0x24126EA1u}));
}

// Cross-platform pin of the addressable draw: the first 64 outputs of
// philox_draw over an 8x8 (round, slot) grid for a fixed (master, trial).
// Any platform or refactor that changes ANY of these words has changed the
// meaning of every stored heterogeneous trajectory.
TEST(Philox, First64AddressableDrawsArePinned) {
  constexpr std::uint64_t kMaster = 0xDEADBEEFCAFEF00Dull;
  constexpr std::uint64_t kTrial = 7;
  constexpr std::uint64_t kExpected[64] = {
      0x1894556C2B87A0E0ull, 0xCDBEE787DAF158D2ull, 0x869643C1CBFCBAFAull,
      0x4A90DA5B6261440Cull, 0xC86F8B0CFD504B4Eull, 0x370A57B657518472ull,
      0x16B9DA9A87331013ull, 0x8541FE285471AE40ull, 0x08A6E99126830485ull,
      0x6B9513E3AF1D768Full, 0x5D066E1B61357005ull, 0x4159B51A81B8D3B3ull,
      0xDB7E592702EB30D8ull, 0x7450BA76646B383Cull, 0xEB8C762DC799EDC1ull,
      0x02ABE38EE66DD027ull, 0x9C63981721B2B7F5ull, 0x6C705DEFCF82A9A8ull,
      0xF4B942DB0C6C130Cull, 0x68B4E29128E19FFBull, 0x2F1DE2A4A812E973ull,
      0xD7B1E5706DAFCB4Aull, 0x8EEC5AA7841438D5ull, 0x82F1F0D61DCBEDA2ull,
      0xE4FA86B41EE47DB6ull, 0xD884C6A6EE783C22ull, 0x0AF4D61A347AD8B3ull,
      0x930CF4355FB1BAA3ull, 0xAB9A05B73DB3423Full, 0xDE62769C79B2E5B8ull,
      0xB275B25479DD6916ull, 0xAA16498A55B28FD3ull, 0x8601B9565F277137ull,
      0x6C249EA6130EC161ull, 0x27512E1B0D5C514Cull, 0xC65609F46D75ED2Dull,
      0x1EA3103D6868E119ull, 0x2B7FD8035D44A7C2ull, 0x619C5B3A8A8B3927ull,
      0x6DF4B6BFEE1ECE31ull, 0x79F558A9BFF22F02ull, 0x53FFA707FE61BDE0ull,
      0x91E61E711FE9A4E5ull, 0x21DFAB5064B2EB8Full, 0xD8EBDDC5A436D407ull,
      0xC06DB70FAE0D7C60ull, 0xF9BC67C24CC1AC7Full, 0xE90DEB3882821A19ull,
      0x360EEB62E06E96C8ull, 0xD7F1DEF2BD627184ull, 0x2345C668DB6EEC87ull,
      0x98445A5A2BF8439Cull, 0xCCC880FF04BB6E24ull, 0xC96A50416F0A9298ull,
      0x535F93FF3C341CFBull, 0xC49FCC14F586A04Bull, 0x3300AEBE78A8E4D3ull,
      0xB20636EF3D58F9C0ull, 0x21BDCB36C939ADFFull, 0x69049DBFD0713BB4ull,
      0x781027478228E112ull, 0xF892DBD0018DA779ull, 0x7985319FF426D97Bull,
      0xA9503DCC49E78B29ull,
  };
  for (std::uint64_t round = 0; round < 8; ++round) {
    for (std::uint64_t slot = 0; slot < 8; ++slot) {
      EXPECT_EQ(philox_draw(kMaster, kTrial, round, slot),
                kExpected[round * 8 + slot])
          << "round=" << round << " slot=" << slot;
    }
  }
  // And it is usable at compile time (the whole point of a pure function).
  static_assert(philox_draw(0xDEADBEEFCAFEF00Dull, 7, 0, 0) ==
                0x1894556C2B87A0E0ull);
}

// Stream addressability: word i of PhiloxStream(seed, stream) must equal
// the direct block computation philox4x32({blk_lo, blk_hi, stream, 0},
// key)[i % 4] with blk = i / 4. This is simultaneously the proof that the
// SSE2 refill (SoA rounds + AoS transpose) is bit-identical to the scalar
// round function, across refill boundaries.
TEST(Philox, StreamWordsMatchDirectBlockComputation) {
  constexpr std::uint64_t kSeed = 0x5EED5EED5EED5EEDull;
  for (std::uint32_t stream : {0u, 1u, 77u}) {
    PhiloxStream s(kSeed, stream);
    const std::uint64_t key = philox_key(kSeed);
    const auto k0 = static_cast<std::uint32_t>(key);
    const auto k1 = static_cast<std::uint32_t>(key >> 32);
    // 3 * kBufWords words: crosses two refill boundaries.
    for (std::uint64_t i = 0; i < 3 * PhiloxStream::kBufWords; ++i) {
      const std::uint64_t blk = i / 4;
      const auto out = philox4x32({static_cast<std::uint32_t>(blk),
                                   static_cast<std::uint32_t>(blk >> 32),
                                   stream, 0u},
                                  k0, k1);
      ASSERT_EQ(s.next_u32(), out[i % 4])
          << "stream=" << stream << " word=" << i;
    }
  }
}

TEST(Philox, ReseedReproducesTheStream) {
  PhiloxStream a(123, 4);
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 100; ++i) first.push_back(a.next_u32());
  a.reseed(123, 4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), first[i]);
}

TEST(Philox, NextBlockAdvancesToFreshWords) {
  PhiloxStream a(9, 0);
  PhiloxStream b(9, 0);
  (void)a.next_u32();  // partially consume the first buffer
  const std::uint32_t* blk_a = a.next_block();
  const std::uint32_t* ref = b.next_block();  // buffer 0
  const std::uint32_t* blk_b = b.next_block();  // buffer 1
  (void)ref;
  for (std::size_t i = 0; i < PhiloxStream::kBufWords; ++i) {
    EXPECT_EQ(blk_a[i], blk_b[i]);  // both are buffer 1: block-aligned skip
  }
}

// Independence across the logical coordinate axes: draws at distinct
// (trial, round, slot) coordinates — and across distinct stream ids on one
// seed — are distinct 64-bit values. For a 64-bit-output random function,
// ANY collision in a few thousand draws is evidence of a wiring bug
// (reused counter plane, dropped axis), not chance (p < 1e-11).
TEST(Philox, CoordinateAxesYieldDistinctDraws) {
  constexpr std::uint64_t kMaster = 31337;
  std::set<std::uint64_t> seen;
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    for (std::uint64_t round = 0; round < 16; ++round) {
      for (std::uint64_t slot = 0; slot < 16; ++slot) {
        EXPECT_TRUE(
            seen.insert(philox_draw(kMaster, trial, round, slot)).second)
            << trial << "," << round << "," << slot;
      }
    }
  }
  // Distinct stream ids on the same seed are disjoint counter planes.
  PhiloxStream s0(kMaster, 0), s1(kMaster, 1);
  for (int i = 0; i < 256; ++i) {
    EXPECT_TRUE(seen.insert(s0.next_u64()).second);
    EXPECT_TRUE(seen.insert(s1.next_u64()).second);
  }
}

// fast_log2f powers the geometric gap computation; its contract is
// |error| < 2e-6 against the exact log2 and exactness on powers of two.
TEST(Philox, FastLog2MatchesStdLog2) {
  EXPECT_EQ(fast_log2f(1.0f), 0.0f);
  EXPECT_EQ(fast_log2f(2.0f), 1.0f);
  EXPECT_EQ(fast_log2f(0.5f), -1.0f);
  EXPECT_EQ(fast_log2f(0x1.0p-24f), -24.0f);
  PhiloxStream s(5, 0);
  for (int i = 0; i < 20000; ++i) {
    const float u = s.next_unit_float();
    if (u == 0.0f) continue;
    const double exact = std::log2(static_cast<double>(u));
    EXPECT_NEAR(fast_log2f(u), exact, 2e-6) << "u=" << u;
  }
  // The skip-sampler's centered uniforms never hit 0 or 1 exactly.
  const float lo = (0.0f + 0.5f) * 0x1.0p-24f;
  const float hi = (16777215.0f + 0.5f) * 0x1.0p-24f;
  EXPECT_NEAR(fast_log2f(lo), std::log2(static_cast<double>(lo)), 2e-6);
  EXPECT_NEAR(fast_log2f(hi), std::log2(static_cast<double>(hi)), 2e-6);
}

// The batch gap kernel runtime-dispatches to lane-parallel variants; the
// contract is that whatever ISA path the host takes, the output equals
// the scalar reference word for word, and the reference itself is exactly
// the documented formula: floor(fast_log2f(centered u) * scale), clamped.
TEST(Philox, GapKernelMatchesScalarReferenceAndFormula) {
  constexpr std::uint32_t kCount = 4 * PhiloxStream::kBufWords;
  constexpr std::uint32_t kCap = 1u << 30;
  const float scale = 1.0f / fast_log2f(1.0f - 0.25f);
  alignas(64) std::array<std::uint32_t, kCount> dispatched;
  PhiloxStream s(987654321, 1);
  philox_fill_gaps(s, kCount, scale, kCap, dispatched.data());

  // Replay the same stream words through the scalar reference and the
  // formula spelled out by hand.
  PhiloxStream replay(987654321, 1);
  for (std::uint32_t base = 0; base < kCount;
       base += PhiloxStream::kBufWords) {
    const std::uint32_t* words = replay.next_block();
    std::array<std::uint32_t, PhiloxStream::kBufWords> reference;
    philox_fill_gaps_reference(words, PhiloxStream::kBufWords, scale, kCap,
                               reference.data());
    for (std::uint32_t i = 0; i < PhiloxStream::kBufWords; ++i) {
      ASSERT_EQ(dispatched[base + i], reference[i]) << "word " << base + i;
      const float u =
          (static_cast<float>(words[i] >> 8) + 0.5f) * 0x1.0p-24f;
      const float gap = fast_log2f(u) * scale;
      const std::uint32_t expected =
          gap >= static_cast<float>(kCap) ? kCap
                                          : static_cast<std::uint32_t>(gap);
      ASSERT_EQ(dispatched[base + i], expected) << "word " << base + i;
    }
  }
}

// ---- statistical smoke (Release CI only; excluded from Debug) ---------

// 256-bin chi-square over the top byte of 2^18 words: df = 255, so the
// statistic is ~N(255, sqrt(510)); 400 is ~6.4 sigma — a once-per-epoch
// false-positive rate, while catching any systematic bin bias.
TEST(PhiloxStatistical, ChiSquareEquidistribution) {
  constexpr int kBins = 256;
  constexpr int kDraws = 1 << 18;
  for (std::uint32_t stream : {0u, 1u}) {
    PhiloxStream s(0xC0FFEEull, stream);
    std::vector<int> bins(kBins, 0);
    for (int i = 0; i < kDraws; ++i) ++bins[s.next_u32() >> 24];
    const double expected = static_cast<double>(kDraws) / kBins;
    double chi2 = 0.0;
    for (int b = 0; b < kBins; ++b) {
      const double d = bins[b] - expected;
      chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 400.0) << "stream=" << stream;
    EXPECT_GT(chi2, 150.0) << "stream=" << stream;  // too-perfect is a bug
  }
}

// Bit balance across all 32 positions, 2^18 words: each bit count is
// ~N(2^17, 2^8.5); +/- 6 sigma bounds.
TEST(PhiloxStatistical, BitBalance) {
  constexpr int kDraws = 1 << 18;
  PhiloxStream s(0xBA1A2CEull, 0);
  std::vector<int> ones(32, 0);
  for (int i = 0; i < kDraws; ++i) {
    std::uint32_t w = s.next_u32();
    for (int b = 0; b < 32; ++b) ones[b] += (w >> b) & 1u;
  }
  const double mean = kDraws / 2.0;
  const double sigma = std::sqrt(kDraws / 4.0);
  for (int b = 0; b < 32; ++b) {
    EXPECT_NEAR(ones[b], mean, 6 * sigma) << "bit " << b;
  }
}

// Streams on the same seed are uncorrelated: the XOR of paired words has
// balanced popcount (mean 16, sigma 2.83 per word; averaged over 2^16
// words the mean is pinned within +/- 6 * 2.83 / 256).
TEST(PhiloxStatistical, StreamPairwiseDecorrelation) {
  constexpr int kDraws = 1 << 16;
  PhiloxStream s0(4242, 0), s1(4242, 1);
  double total = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    total += std::popcount(s0.next_u32() ^ s1.next_u32());
  }
  const double mean = total / kDraws;
  EXPECT_NEAR(mean, 16.0, 6 * 2.8284 / std::sqrt(double{kDraws}));
}

}  // namespace
}  // namespace rumor

// Tests for the RNG substrate: determinism, range correctness, and crude
// uniformity checks strong enough to catch implementation mistakes without
// being flaky.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "support/rng.hpp"

namespace rumor {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBuckets> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo = saw_lo || v == 5;
    saw_hi = saw_hi || v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(Rng, CoinIsFair) {
  Rng rng(23);
  int heads = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) heads += rng.coin() ? 1 : 0;
  EXPECT_NEAR(heads / static_cast<double>(kDraws), 0.5, 0.01);
}

TEST(SplitMix, DeterministicSequence) {
  std::uint64_t s1 = 100, s2 = 100;
  for (int i = 0; i < 100; ++i) EXPECT_EQ(splitmix64(s1), splitmix64(s2));
}

TEST(DeriveSeed, StableAndSpread) {
  // Stateless: same inputs, same output.
  EXPECT_EQ(derive_seed(1, 2), derive_seed(1, 2));
  // Different trial indices produce distinct seeds.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 10000; ++i) seeds.insert(derive_seed(99, i));
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(DeriveSeed, IndependentOfEvaluationOrder) {
  const auto a = derive_seed(5, 1000);
  const auto b = derive_seed(5, 0);
  EXPECT_EQ(derive_seed(5, 1000), a);
  EXPECT_EQ(derive_seed(5, 0), b);
}

}  // namespace
}  // namespace rumor

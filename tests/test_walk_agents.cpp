// AgentSystem: placement distributions, stepping validity, stationarity
// preservation.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/generators.hpp"
#include "walk/agents.hpp"

namespace rumor {
namespace {

TEST(AgentCount, RoundsAlpha) {
  EXPECT_EQ(agent_count_for(100, 1.0), 100u);
  EXPECT_EQ(agent_count_for(100, 0.5), 50u);
  EXPECT_EQ(agent_count_for(100, 2.0), 200u);
  EXPECT_EQ(agent_count_for(3, 0.1), 1u);  // never zero
}

TEST(Agents, OnePerVertexPlacement) {
  const Graph g = gen::cycle(10);
  Rng rng(1);
  AgentSystem agents(g, 10, Placement::one_per_vertex, rng);
  for (Agent a = 0; a < 10; ++a) EXPECT_EQ(agents.position(a), a);
}

TEST(Agents, AtVertexPlacement) {
  const Graph g = gen::cycle(10);
  Rng rng(1);
  AgentSystem agents(g, 5, Placement::at_vertex, rng, 7);
  for (Agent a = 0; a < 5; ++a) EXPECT_EQ(agents.position(a), 7u);
}

TEST(Agents, StationaryPlacementMatchesDegreeWeights) {
  // On the star, the center holds half the stationary mass.
  const Graph g = gen::star(20);
  Rng rng(2);
  AgentSystem agents(g, 40000, Placement::stationary, rng);
  std::size_t at_center = 0;
  for (Vertex pos : agents.positions()) at_center += (pos == 0) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(at_center), 20000.0,
              5 * std::sqrt(20000.0));
}

TEST(Agents, UniformPlacementCoversVertices) {
  const Graph g = gen::cycle(16);
  Rng rng(3);
  AgentSystem agents(g, 16000, Placement::uniform, rng);
  auto occ = agents.occupancy();
  for (Vertex v = 0; v < 16; ++v) {
    EXPECT_NEAR(occ[v], 1000.0, 5 * std::sqrt(1000.0));
  }
}

TEST(Agents, StepMovesToNeighbors) {
  const Graph g = gen::cycle(12);
  Rng rng(4);
  AgentSystem agents(g, 30, Placement::uniform, rng);
  const std::vector<Vertex> before(agents.positions().begin(),
                                   agents.positions().end());
  agents.step_all(rng, Laziness::none);
  for (Agent a = 0; a < 30; ++a) {
    EXPECT_TRUE(g.has_edge(before[a], agents.position(a)));
  }
}

TEST(Agents, LazyStepStaysOrMoves) {
  const Graph g = gen::cycle(12);
  Rng rng(5);
  AgentSystem agents(g, 4000, Placement::uniform, rng);
  const std::vector<Vertex> before(agents.positions().begin(),
                                   agents.positions().end());
  agents.step_all(rng, Laziness::half);
  std::size_t stayed = 0;
  for (Agent a = 0; a < 4000; ++a) {
    const Vertex now = agents.position(a);
    const bool ok = (now == before[a]) || g.has_edge(before[a], now);
    EXPECT_TRUE(ok);
    stayed += (now == before[a]) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(stayed), 2000.0, 5 * std::sqrt(2000.0));
}

TEST(Agents, OccupancySumsToCount) {
  const Graph g = gen::grid2d(5, 5);
  Rng rng(6);
  AgentSystem agents(g, 123, Placement::stationary, rng);
  for (int round = 0; round < 10; ++round) {
    const auto occ = agents.occupancy();
    EXPECT_EQ(std::accumulate(occ.begin(), occ.end(), 0u), 123u);
    agents.step_all(rng, Laziness::none);
  }
}

TEST(Agents, StationarityPreservedUnderStepping) {
  // Start from the stationary distribution, walk 50 rounds, and check the
  // empirical distribution still matches degree weights. On the star the
  // walk is periodic, so use a non-bipartite graph.
  const Graph g = gen::heavy_binary_tree(31);
  Rng rng(7);
  const std::size_t agent_count = 60000;
  AgentSystem agents(g, agent_count, Placement::stationary, rng);
  for (int round = 0; round < 50; ++round) {
    agents.step_all(rng, Laziness::none);
  }
  const auto occ = agents.occupancy();
  const double total_degree = static_cast<double>(g.total_degree());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const double expected =
        agent_count * static_cast<double>(g.degree(v)) / total_degree;
    EXPECT_NEAR(occ[v], expected, 6 * std::sqrt(expected) + 3) << "v=" << v;
  }
}

TEST(Agents, SetPosition) {
  const Graph g = gen::path(5);
  Rng rng(8);
  AgentSystem agents(g, 2, Placement::at_vertex, rng, 0);
  agents.set_position(1, 4);
  EXPECT_EQ(agents.position(0), 0u);
  EXPECT_EQ(agents.position(1), 4u);
}

}  // namespace
}  // namespace rumor

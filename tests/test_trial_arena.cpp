// TrialArena engine tests: EpochArray semantics, arena-vs-owned result
// equivalence, arena reuse across run_trials invocations, and the
// instrumented-allocator proof that steady-state trials perform zero heap
// allocations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/dynamic_agents.hpp"
#include "core/frog.hpp"
#include "core/hybrid.hpp"
#include "core/meet_exchange.hpp"
#include "core/multi_rumor.hpp"
#include "core/push.hpp"
#include "core/push_pull.hpp"
#include "core/visit_exchange.hpp"
#include "experiments/trials.hpp"
#include "graph/generators.hpp"
#include "support/epoch_array.hpp"
#include "support/thread_pool.hpp"
#include "support/trial_arena.hpp"

// ---- Instrumented global allocator -----------------------------------
//
// Linking these replacements into the test binary lets individual tests
// count heap allocations in a window (counters shared across test files
// via alloc_probe.hpp). Counting is off by default so the rest of the
// suite is unaffected.
#include "alloc_probe.hpp"

namespace rumor::test_alloc {
std::atomic<bool> g_count{false};
std::atomic<std::size_t> g_allocations{0};
std::atomic<std::size_t> g_bytes{0};
}  // namespace rumor::test_alloc

namespace {
void* counted_alloc(std::size_t size) {
  if (rumor::test_alloc::g_count.load(std::memory_order_relaxed)) {
    rumor::test_alloc::g_allocations.fetch_add(1, std::memory_order_relaxed);
    rumor::test_alloc::g_bytes.fetch_add(size, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rumor {
namespace {

// ---- EpochArray ------------------------------------------------------

TEST(EpochArray, DefaultsAndWrites) {
  EpochArray<std::uint32_t> arr;
  arr.reset(4, 99);
  EXPECT_EQ(arr.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(arr.get(i), 99u);
    EXPECT_FALSE(arr.touched(i));
  }
  arr.set(2, 7);
  EXPECT_TRUE(arr.touched(2));
  EXPECT_EQ(arr.get(2), 7u);
  EXPECT_EQ(arr.get(1), 99u);
}

TEST(EpochArray, ResetForgetsWritesInO1) {
  EpochArray<std::uint32_t> arr;
  arr.reset(8, 0);
  for (std::size_t i = 0; i < 8; ++i) arr.set(i, 1 + static_cast<std::uint32_t>(i));
  arr.reset(8, 5);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(arr.get(i), 5u);
    EXPECT_FALSE(arr.touched(i));
  }
}

TEST(EpochArray, AddAccumulatesFromDefault) {
  EpochArray<std::uint32_t> arr;
  arr.reset(3, 0);
  EXPECT_EQ(arr.add(1, 2), 2u);
  EXPECT_EQ(arr.add(1, 3), 5u);
  EXPECT_EQ(arr.get(1), 5u);
  EXPECT_EQ(arr.get(0), 0u);
}

TEST(EpochArray, ShrinkAndGrowAcrossResets) {
  EpochArray<std::uint32_t> arr;
  arr.reset(16, 1);
  arr.set(15, 3);
  arr.reset(4, 2);  // shrink: capacity kept
  EXPECT_EQ(arr.size(), 4u);
  EXPECT_EQ(arr.get(3), 2u);
  arr.reset(32, 9);  // grow
  EXPECT_EQ(arr.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) EXPECT_EQ(arr.get(i), 9u);
}

TEST(EpochArray, ToVectorMaterializesDefaults) {
  EpochArray<std::uint32_t> arr;
  arr.reset(3, 8);
  arr.set(1, 4);
  const std::vector<std::uint32_t> v = arr.to_vector();
  EXPECT_EQ(v, (std::vector<std::uint32_t>{8, 4, 8}));
}

TEST(StampSetReset, ReusesAndEmpties) {
  StampSet set(4);
  set.insert(2);
  set.reset(4);
  EXPECT_FALSE(set.contains(2));
  set.reset(16);  // grow
  set.insert(11);
  EXPECT_TRUE(set.contains(11));
  set.reset(16);
  EXPECT_FALSE(set.contains(11));
}

// ---- Arena-vs-owned equivalence --------------------------------------
//
// Lending an arena must not change any simulated trajectory: same (graph,
// protocol, seed) → identical RunResult, with all traces on, and the
// arena's recycled state from previous trials must never leak into the
// next one.

TraceOptions all_traces() {
  TraceOptions t;
  t.informed_curve = true;
  t.inform_rounds = true;
  t.edge_traffic = true;
  return t;
}

void expect_same(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.agent_rounds, b.agent_rounds);
  EXPECT_EQ(a.informed, b.informed);
  EXPECT_EQ(a.informed_curve, b.informed_curve);
  EXPECT_EQ(a.stifled_curve, b.stifled_curve);
  EXPECT_EQ(a.vertex_inform_round, b.vertex_inform_round);
  EXPECT_EQ(a.agent_inform_round, b.agent_inform_round);
  EXPECT_EQ(a.edge_traffic, b.edge_traffic);
}

TEST(TrialArena, ArenaAndOwnedTrialsAgreeAcrossProtocolsAndGraphs) {
  Rng gen_rng(2);
  std::vector<Graph> graphs;
  graphs.push_back(gen::heavy_binary_tree(63));
  graphs.push_back(gen::circulant(80, 8));
  graphs.push_back(gen::random_regular(64, 5, gen_rng));
  TrialArena arena;  // deliberately shared across everything below
  for (const Graph& g : graphs) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      {
        PushOptions o;
        o.trace = all_traces();
        expect_same(PushProcess(g, 0, seed, o, &arena).run(),
                    PushProcess(g, 0, seed, o).run());
      }
      {
        PushPullOptions o;
        o.trace = all_traces();
        expect_same(PushPullProcess(g, 0, seed, o, &arena).run(),
                    PushPullProcess(g, 0, seed, o).run());
      }
      {
        WalkOptions o;
        o.trace = all_traces();
        expect_same(VisitExchangeProcess(g, 0, seed, o, &arena).run(),
                    VisitExchangeProcess(g, 0, seed, o).run());
      }
      {
        WalkOptions o = MeetExchangeProcess::default_options();
        o.trace = all_traces();
        expect_same(MeetExchangeProcess(g, 0, seed, o, &arena).run(),
                    MeetExchangeProcess(g, 0, seed, o).run());
      }
    }
  }
}

TEST(TrialArena, ArenaAndOwnedTrialsAgreeForHybridDynamicFrog) {
  Rng gen_rng(5);
  std::vector<Graph> graphs;
  graphs.push_back(gen::heavy_binary_tree(63));
  graphs.push_back(gen::cycle(64));  // bipartite: exercises auto laziness
  graphs.push_back(gen::random_regular(64, 5, gen_rng));
  TrialArena arena;  // deliberately shared and dirty across everything below
  for (const Graph& g : graphs) {
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      {
        WalkOptions o;
        o.lazy = LazyMode::auto_bipartite;
        o.trace.informed_curve = true;
        o.trace.inform_rounds = true;
        expect_same(HybridProcess(g, 0, seed, o, &arena).run(),
                    HybridProcess(g, 0, seed, o).run());
      }
      {
        DynamicAgentOptions o;
        o.churn = 0.1;
        o.loss_round = 3;
        o.loss_fraction = 0.25;
        o.walk.trace.informed_curve = true;
        o.walk.trace.inform_rounds = true;
        expect_same(
            DynamicVisitExchangeProcess(g, 0, seed, o, &arena).run(),
            DynamicVisitExchangeProcess(g, 0, seed, o).run());
      }
      {
        FrogOptions o;
        o.frogs_per_vertex = 2;
        o.trace.informed_curve = true;
        o.trace.inform_rounds = true;
        expect_same(FrogProcess(g, 0, seed, o, &arena).run(),
                    FrogProcess(g, 0, seed, o).run());
      }
    }
  }
}

void expect_same_multi(const MultiRumorResult& a, const MultiRumorResult& b) {
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.completion_round, b.completion_round);
  EXPECT_EQ(a.latency, b.latency);
}

TEST(TrialArena, ArenaAndOwnedTrialsAgreeForMultiRumor) {
  const Graph g = gen::hypercube(6);
  const std::vector<RumorSpec> rumors = {{0, 0}, {7, 2}, {33, 5}};
  TrialArena arena;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    expect_same_multi(MultiRumorPushPull(g, rumors, seed, 0, &arena).run(),
                      MultiRumorPushPull(g, rumors, seed).run());
    expect_same_multi(
        MultiRumorVisitExchange(g, rumors, seed, {}, &arena).run(),
        MultiRumorVisitExchange(g, rumors, seed).run());
  }
}

TEST(TrialArena, RunTrialsResultsIndependentOfArenaReuse) {
  const Graph g = gen::circulant(128, 4);
  const ProtocolSpec spec = default_spec(Protocol::visit_exchange);
  const TrialSet first = run_trials(g, spec, 0, 40, 99);
  const TrialSet again = run_trials(g, spec, 0, 40, 99);
  EXPECT_EQ(first.rounds, again.rounds);  // reuse is invisible
  EXPECT_EQ(first.incomplete, again.incomplete);
}

// ---- Zero-allocation steady state ------------------------------------

// Specs arrive as TEXT and dispatch through the SimulatorRegistry — the
// exact path rumor_run takes — so the zero-allocation contract is proven
// for the scenario API, not just for hand-built specs.
void expect_zero_alloc_steady_state(const Graph& g, const char* spec_text,
                                    TrialArena& arena, Vertex source = 0) {
  const auto spec = ProtocolSpec::parse(spec_text);
  ASSERT_TRUE(spec) << spec_text;
  // Warm-up: buffers grow to their high-water mark, the placement cache
  // binds to the graph.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    (void)run_protocol(g, *spec, source, derive_seed(4242, seed), &arena);
  }
  test_alloc::g_allocations.store(0);
  test_alloc::g_count.store(true);
  double acc = 0.0;
  for (std::uint64_t seed = 8; seed < 40; ++seed) {
    acc +=
        run_protocol(g, *spec, source, derive_seed(4242, seed), &arena).rounds;
  }
  test_alloc::g_count.store(false);
  EXPECT_EQ(test_alloc::g_allocations.load(), 0u)
      << "protocol=" << spec_text << " (rounds acc " << acc << ")";
}

TEST(TrialArena, SteadyStateTrialsAllocateNothing) {
  const Graph g = gen::circulant(256, 8);
  TrialArena arena;
  // Default meet-exchange keeps LazyMode::auto_bipartite: resolution reads
  // the graph's memoized property cache, so it no longer allocates.
  for (const char* spec : {"push", "push-pull", "visit-exchange",
                           "meet-exchange", "meet-exchange(lazy=always)",
                           "hybrid", "async",
                           "multi-push-pull(rumors=4,interval=2)",
                           "multi-visit-exchange(rumors=4,interval=2)"}) {
    expect_zero_alloc_steady_state(g, spec, arena);
  }
}

// The acceptance scenario: the Fig. 1(a) star family, leaf source, every
// protocol the figure compares — zero steady-state allocations through the
// registry path.
TEST(TrialArena, Fig1aStarScenarioAllocatesNothingThroughRegistry) {
  const Graph g = gen::star(512);
  TrialArena arena;
  for (const char* spec :
       {"push", "push-pull", "visit-exchange", "meet-exchange"}) {
    expect_zero_alloc_steady_state(g, spec, arena, /*source=*/1);
  }
}

TEST(TrialArena, SteadyStateDynamicAgentTrialsAllocateNothing) {
  const Graph g = gen::circulant(256, 8);
  TrialArena arena;
  // churn exercises respawn + born-this-round marks; spec text exercises
  // the registry path.
  expect_zero_alloc_steady_state(
      g, "dynamic-agent(churn=0.05,loss_round=4,loss_fraction=0.25)", arena);
}

TEST(TrialArena, SteadyStateFrogTrialsAllocateNothing) {
  const Graph g = gen::circulant(256, 8);
  TrialArena arena;
  expect_zero_alloc_steady_state(g, "frog(frogs=2)", arena);
}

// Satellite: the transmission-model field path. The per-vertex receive
// field, the CSR-aligned per-edge field, and the blocked set are cached by
// (graph uid, parameters) in the arena's TransmissionScratch, so repeated
// heterogeneous trials rebuild and allocate nothing.
TEST(TrialArena, HeterogeneousTransmissionSteadyStateAllocatesNothing) {
  const Graph g = gen::circulant(256, 8);
  TrialArena arena;
  for (const char* spec :
       {"push(tp=deg^-0.5)", "push(tp=0.5,stifle=16)",
        "push-pull(tp=0.5,block=0.1)", "visit-exchange(tp=deg^-0.5)",
        "meet-exchange(tp=0.5)", "hybrid(tp=0.5,stifle=16)",
        "frog(frogs=2,tp=0.5)", "dynamic-agent(churn=0.05,tp=0.5)",
        "multi-push-pull(rumors=4,tp=0.5)",
        "multi-visit-exchange(rumors=4,tp=0.5)", "async(tp=0.5)"}) {
    expect_zero_alloc_steady_state(g, spec, arena);
  }
}

TEST(TrialArena, PerEdgeFieldStepPathAllocatesNothing) {
  // The CSR-slot-aligned per-edge field is what the edge-traffic traced
  // contact sites read (attempt_slot); stepping with a warm arena — no
  // result materialization — must be allocation-free.
  const Graph g = gen::circulant(256, 8);
  TrialArena arena;
  const auto spec = ProtocolSpec::parse("push(tp=deg^-0.5,edge_traffic=on)");
  ASSERT_TRUE(spec);
  const PushOptions& options = std::get<PushOptions>(spec->options);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {  // warm the buffers
    PushProcess process(g, 0, seed, options, &arena);
    for (int s = 0; s < 8; ++s) process.step();
  }
  test_alloc::g_allocations.store(0);
  test_alloc::g_count.store(true);
  std::uint64_t acc = 0;
  for (std::uint64_t seed = 4; seed < 12; ++seed) {
    PushProcess process(g, 0, seed, options, &arena);
    for (int s = 0; s < 8; ++s) process.step();
    acc += process.informed_count();
  }
  test_alloc::g_count.store(false);
  EXPECT_EQ(test_alloc::g_allocations.load(), 0u) << "(informed acc " << acc << ")";
}

TEST(TrialArena, SteadyStateMultiRumorTrialsAllocateNothing) {
  const Graph g = gen::circulant(256, 8);
  TrialArena arena;
  const std::vector<RumorSpec> rumors = {{0, 0}, {17, 3}, {99, 6}};
  MultiRumorResult result;  // reused output buffers (run_into)
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    MultiRumorPushPull(g, rumors, seed, 0, &arena).run_into(result);
    MultiRumorVisitExchange(g, rumors, seed, {}, &arena).run_into(result);
  }
  test_alloc::g_allocations.store(0);
  test_alloc::g_count.store(true);
  Round acc = 0;
  for (std::uint64_t seed = 8; seed < 24; ++seed) {
    MultiRumorPushPull pp(g, rumors, seed, 0, &arena);
    pp.run_into(result);
    acc += result.rounds;
    MultiRumorVisitExchange vx(g, rumors, seed, {}, &arena);
    vx.run_into(result);
    acc += result.rounds;
  }
  test_alloc::g_count.store(false);
  EXPECT_EQ(test_alloc::g_allocations.load(), 0u) << "(rounds acc " << acc << ")";
}

// ---- Graph property cache --------------------------------------------

TEST(GraphPropertiesCache, ComputedOnceAndAllocationFreeAfterward) {
  const Graph g = gen::cycle(128);  // even cycle: bipartite
  EXPECT_FALSE(g.properties_cached());
  // First query runs the one-time traversal...
  EXPECT_EQ(resolve_laziness(g, LazyMode::auto_bipartite), Laziness::half);
  EXPECT_TRUE(g.properties_cached());
  // ...and every later resolution is a pure cache hit: no allocations, no
  // BFS scratch.
  test_alloc::g_allocations.store(0);
  test_alloc::g_count.store(true);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(resolve_laziness(g, LazyMode::auto_bipartite), Laziness::half);
  }
  test_alloc::g_count.store(false);
  EXPECT_EQ(test_alloc::g_allocations.load(), 0u);
}

TEST(GraphPropertiesCache, SharedAcrossCopies) {
  const Graph g = gen::cycle(9);  // odd cycle: not bipartite
  (void)g.properties();
  const Graph copy = g;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_TRUE(copy.properties_cached());
  EXPECT_FALSE(copy.properties().bipartite);
  EXPECT_TRUE(copy.properties().connected);
  EXPECT_TRUE(copy.properties().regular);
}

TEST(TrialArena, RunTrialsSteadyStateAllocationsIndependentOfTrialCount) {
  if (global_pool().worker_count() != 1) {
    GTEST_SKIP() << "deterministic only with a single pool worker";
  }
  const Graph g = gen::circulant(256, 8);
  const ProtocolSpec spec = default_spec(Protocol::visit_exchange);
  (void)run_trials(g, spec, 0, 64, 7);  // warm worker arena + buffers

  auto count_for = [&](std::size_t trials) {
    test_alloc::g_allocations.store(0);
    test_alloc::g_count.store(true);
    (void)run_trials(g, spec, 0, trials, 7);
    test_alloc::g_count.store(false);
    return test_alloc::g_allocations.load();
  };
  const std::size_t small = count_for(8);
  const std::size_t large = count_for(64);
  // Per-call overhead (result vector, one std::function) is allowed; any
  // per-trial allocation would scale the count with the trial count.
  EXPECT_EQ(small, large);
}

}  // namespace
}  // namespace rumor

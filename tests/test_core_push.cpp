// PUSH protocol tests: exact semantics on tiny graphs, invariants, and
// statistical agreement with known broadcast-time laws.
#include <gtest/gtest.h>

#include <cmath>

#include "core/push.hpp"
#include "graph/generators.hpp"
#include "support/stats.hpp"

namespace rumor {
namespace {

TEST(Push, TwoVerticesOneRound) {
  const Graph g = gen::path(2);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const RunResult r = run_push(g, 0, seed);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.rounds, 1u);  // deterministic: 0 must call 1
  }
}

TEST(Push, PathIsDeterministicDiameterTime) {
  // On a path from an end vertex, each interior vertex has its informed
  // neighbor on one side only... only vertex ends are forced; interior
  // vertices have two choices, so only the 2-path is deterministic. For the
  // general path we check bounds: at least eccentricity rounds.
  const Graph g = gen::path(6);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const RunResult r = run_push(g, 0, seed);
    EXPECT_TRUE(r.completed);
    EXPECT_GE(r.rounds, 5u);  // information travels one hop per round max
  }
}

TEST(Push, SourceInformedAtRoundZero) {
  const Graph g = gen::complete(5);
  PushProcess p(g, 2, 1);
  EXPECT_TRUE(p.vertex_informed(2));
  EXPECT_EQ(p.informed_count(), 1u);
  EXPECT_EQ(p.vertex_inform_round(2), 0u);
  EXPECT_FALSE(p.done());
}

TEST(Push, InformedSetGrowsMonotonically) {
  const Graph g = gen::complete(64);
  PushProcess p(g, 0, 7);
  std::uint32_t prev = p.informed_count();
  while (!p.done()) {
    p.step();
    EXPECT_GE(p.informed_count(), prev);
    // Push at most doubles the informed set per round.
    EXPECT_LE(p.informed_count(), 2 * prev);
    prev = p.informed_count();
  }
}

TEST(Push, InformRoundsAreConsistent) {
  const Graph g = gen::heavy_binary_tree(63);
  PushOptions options;
  options.trace.inform_rounds = true;
  const RunResult r = run_push(g, 0, 3, options);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.vertex_inform_round.size(), g.num_vertices());
  std::uint32_t max_round = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NE(r.vertex_inform_round[v], kNeverInformed);
    max_round = std::max(max_round, r.vertex_inform_round[v]);
  }
  EXPECT_EQ(max_round, r.rounds);
  EXPECT_EQ(r.vertex_inform_round[0], 0u);
}

TEST(Push, InformedCurveMatchesCounts) {
  const Graph g = gen::complete(32);
  PushOptions options;
  options.trace.informed_curve = true;
  const RunResult r = run_push(g, 0, 9, options);
  ASSERT_EQ(r.informed_curve.size(), r.rounds + 1);
  EXPECT_EQ(r.informed_curve.front(), 1u);
  EXPECT_EQ(r.informed_curve.back(), 32u);
  for (std::size_t i = 1; i < r.informed_curve.size(); ++i) {
    EXPECT_GE(r.informed_curve[i], r.informed_curve[i - 1]);
  }
}

TEST(Push, CutoffReportsIncomplete) {
  const Graph g = gen::star(1000);
  PushOptions options;
  options.max_rounds = 3;  // far too few for the star
  const RunResult r = run_push(g, 0, 1, options);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 3u);
}

TEST(Push, CompleteGraphLogarithmicLaw) {
  // Classical result (Frieze–Grimmett/Pittel): T_push on K_n is
  // log2(n) + ln(n) + O(1). Check the mean lands in a generous band.
  const Vertex n = 1024;
  const Graph g = gen::complete(n);
  std::vector<double> samples;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    samples.push_back(static_cast<double>(run_push(g, 0, seed).rounds));
  }
  const double expected = std::log2(n) + std::log(n);
  const Summary s = Summary::of(samples);
  EXPECT_GT(s.mean, expected - 3.0);
  EXPECT_LT(s.mean, expected + 4.0);
}

TEST(Push, StarCouponCollectorLaw) {
  // Lemma 2(a): E[T_push] = Ω(n log n); with a leaf source it is
  // ~ n*H_n + O(n). Band check at one size.
  const Vertex leaves = 256;
  const Graph g = gen::star(leaves);
  std::vector<double> samples;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    samples.push_back(
        static_cast<double>(run_push(g, 1, seed).rounds));  // leaf source
  }
  double harmonic = 0;
  for (Vertex k = 1; k <= leaves; ++k) harmonic += 1.0 / k;
  const double coupon = leaves * harmonic;
  const Summary s = Summary::of(samples);
  EXPECT_GT(s.mean, 0.6 * coupon);
  EXPECT_LT(s.mean, 1.4 * coupon);
}

TEST(Push, LossySlowdownIsBounded) {
  // With loss probability f, each call succeeds w.p. 1-f: broadcast time
  // scales by roughly 1/(1-f) on the complete graph (Elsässer–Sauerwald
  // robustness). Check directionality and rough magnitude.
  const Graph g = gen::complete(512);
  std::vector<double> clean, lossy;
  PushOptions lossy_options;
  lossy_options.loss_probability = 0.5;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    clean.push_back(static_cast<double>(run_push(g, 0, seed).rounds));
    lossy.push_back(
        static_cast<double>(run_push(g, 0, seed, lossy_options).rounds));
  }
  const double clean_mean = Summary::of(clean).mean;
  const double lossy_mean = Summary::of(lossy).mean;
  EXPECT_GT(lossy_mean, clean_mean * 1.2);
  EXPECT_LT(lossy_mean, clean_mean * 3.0);
}

TEST(Push, EdgeTrafficAccountsAllCalls) {
  const Graph g = gen::complete(16);
  PushOptions options;
  options.trace.edge_traffic = true;
  PushProcess p(g, 0, 11, options);
  // After k rounds the total traffic equals the number of calls made, which
  // for push is the sum over rounds of previously-informed counts. Run to
  // completion and check totals against the informed curve.
  options.trace.informed_curve = true;
  PushProcess traced(g, 0, 11, options);
  const RunResult r = traced.run();
  ASSERT_TRUE(r.completed);
  std::uint64_t total_calls = 0;
  for (std::size_t t = 0; t + 1 < r.informed_curve.size(); ++t) {
    total_calls += r.informed_curve[t];  // every informed vertex calls
  }
  std::uint64_t total_traffic = 0;
  for (std::uint64_t c : r.edge_traffic) total_traffic += c;
  // The optimized simulator skips saturated vertices' calls, so traced
  // traffic is at most the definitional call count and at least the number
  // of state-changing rounds.
  EXPECT_LE(total_traffic, total_calls);
  EXPECT_GE(total_traffic, r.rounds);
}

TEST(Push, DeterministicGivenSeed) {
  const Graph g = gen::heavy_binary_tree(127);
  const RunResult a = run_push(g, 5, 12345);
  const RunResult b = run_push(g, 5, 12345);
  EXPECT_EQ(a.rounds, b.rounds);
}

}  // namespace
}  // namespace rumor

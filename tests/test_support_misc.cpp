// Thread pool, CSV, and table formatter tests.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <vector>

#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace rumor {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, MoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(500, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 500u * 499u / 2);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(50, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 50);
  }
}

TEST(ThreadPool, SingleWorkerFallsBackToSerial) {
  ThreadPool pool(1);
  std::vector<int> order;
  pool.parallel_for(10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);  // serial path preserves order
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesHeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out, {"n", "protocol", "rounds"});
  csv.row({"100", "push", "42"});
  csv.row({"200", "push,pull", "17"});
  EXPECT_EQ(out.str(),
            "n,protocol,rounds\n100,push,42\n200,\"push,pull\",17\n");
  EXPECT_EQ(csv.rows_written(), 2u);
  EXPECT_EQ(csv.columns(), 3u);
}

TEST(Table, PlainAlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "23"});
  const std::string rendered = t.render_plain();
  EXPECT_NE(rendered.find("name"), std::string::npos);
  EXPECT_NE(rendered.find("longer"), std::string::npos);
  // All lines equal width for the header+separator at least.
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, MarkdownShape) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string md = t.render_markdown();
  EXPECT_EQ(md.find("| a"), 0u);
  EXPECT_NE(md.find("|---"), std::string::npos);
  EXPECT_NE(md.find("| 1"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::num(3.14159, 0), "3");
  EXPECT_EQ(TextTable::num(std::uint64_t{12345}), "12345");
}

}  // namespace
}  // namespace rumor

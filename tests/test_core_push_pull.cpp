// PUSH-PULL protocol tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/push.hpp"
#include "core/push_pull.hpp"
#include "graph/generators.hpp"
#include "support/stats.hpp"

namespace rumor {
namespace {

TEST(PushPull, TwoVerticesOneRound) {
  const Graph g = gen::path(2);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const RunResult r = run_push_pull(g, 1, seed);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.rounds, 1u);
  }
}

TEST(PushPull, StarCompletesInAtMostTwoRounds) {
  // Lemma 2(b): T_ppull <= 2 on the star (leaves pull from the center).
  const Graph g = gen::star(500);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const RunResult from_center = run_push_pull(g, 0, seed);
    EXPECT_TRUE(from_center.completed);
    EXPECT_LE(from_center.rounds, 1u);  // center informed: all leaves pull it
    const RunResult from_leaf = run_push_pull(g, 3, seed);
    EXPECT_TRUE(from_leaf.completed);
    EXPECT_LE(from_leaf.rounds, 2u);
  }
}

TEST(PushPull, NeverSlowerThanPushInDistribution) {
  // Push-pull dominates push on any graph (the push calls are a subset of
  // the exchanges). Compare means on a moderately hard graph.
  const Graph g = gen::heavy_binary_tree(255);
  std::vector<double> push_times, ppull_times;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    push_times.push_back(static_cast<double>(run_push(g, 0, seed).rounds));
    ppull_times.push_back(
        static_cast<double>(run_push_pull(g, 0, seed).rounds));
  }
  EXPECT_LE(Summary::of(ppull_times).mean, Summary::of(push_times).mean * 1.1);
}

TEST(PushPull, InformedSetMonotone) {
  const Graph g = gen::complete(64);
  PushPullProcess p(g, 0, 3);
  std::uint32_t prev = p.informed_count();
  while (!p.done()) {
    p.step();
    EXPECT_GE(p.informed_count(), prev);
    prev = p.informed_count();
  }
  EXPECT_EQ(p.informed_count(), 64u);
}

TEST(PushPull, DoubleStarBridgeIsSlow) {
  // Lemma 3(a): E[T_ppull] = Ω(n) on the double star — the bridge is chosen
  // with probability O(1/n) per round. At leaves=256, expect well over the
  // O(log n) scale of the star.
  const Vertex leaves = 256;
  const Graph g = gen::double_star(leaves);
  std::vector<double> samples;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    samples.push_back(static_cast<double>(run_push_pull(g, 2, seed).rounds));
  }
  const double mean = Summary::of(samples).mean;
  // Expected bridge-crossing wait is ~(leaves+1)/2 rounds; broadcast also
  // needs the initial hop and the final flood. A loose lower band suffices
  // to witness Ω(n) at fixed n.
  EXPECT_GT(mean, static_cast<double>(leaves) / 8);
}

TEST(PushPull, InformRoundsTraceConsistent) {
  const Graph g = gen::hypercube(7);
  PushPullOptions options;
  options.trace.inform_rounds = true;
  const RunResult r = run_push_pull(g, 0, 5, options);
  ASSERT_TRUE(r.completed);
  std::uint32_t max_round = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NE(r.vertex_inform_round[v], kNeverInformed);
    max_round = std::max(max_round, r.vertex_inform_round[v]);
  }
  EXPECT_EQ(max_round, r.rounds);
}

TEST(PushPull, EdgeTrafficCountsEveryVertexEveryRound) {
  // The exact-bandwidth path performs one call per vertex per round.
  const Graph g = gen::complete(24);
  PushPullOptions options;
  options.trace.edge_traffic = true;
  const RunResult r = run_push_pull(g, 0, 7, options);
  ASSERT_TRUE(r.completed);
  std::uint64_t total = 0;
  for (std::uint64_t c : r.edge_traffic) total += c;
  EXPECT_EQ(total, static_cast<std::uint64_t>(g.num_vertices()) * r.rounds);
}

TEST(PushPull, TrafficTraceDoesNotChangeLaw) {
  // The traced (full-scan) and untraced (fast-path) simulators implement
  // the same process: their mean broadcast times must agree.
  const Graph g = gen::hypercube(8);
  std::vector<double> fast, traced;
  PushPullOptions traced_options;
  traced_options.trace.edge_traffic = true;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    fast.push_back(static_cast<double>(run_push_pull(g, 0, seed).rounds));
    traced.push_back(static_cast<double>(
        run_push_pull(g, 0, seed + 1000, traced_options).rounds));
  }
  const Summary fs = Summary::of(fast);
  const Summary ts = Summary::of(traced);
  EXPECT_NEAR(fs.mean, ts.mean, 4 * (fs.stderr_mean + ts.stderr_mean) + 0.5);
}

TEST(PushPull, CutoffReportsIncomplete) {
  const Graph g = gen::double_star(2000);
  PushPullOptions options;
  options.max_rounds = 2;
  const RunResult r = run_push_pull(g, 2, 1, options);
  EXPECT_FALSE(r.completed);
}

TEST(PushPull, LossySlowdownDirectional) {
  const Graph g = gen::complete(256);
  PushPullOptions lossy;
  lossy.loss_probability = 0.6;
  std::vector<double> clean_t, lossy_t;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    clean_t.push_back(static_cast<double>(run_push_pull(g, 0, seed).rounds));
    lossy_t.push_back(
        static_cast<double>(run_push_pull(g, 0, seed, lossy).rounds));
  }
  EXPECT_GT(Summary::of(lossy_t).mean, Summary::of(clean_t).mean);
}

}  // namespace
}  // namespace rumor

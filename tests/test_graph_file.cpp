// Edge-list loader + mmap'd CSR cache: parsing tolerances (comments,
// blanks, duplicate and reversed edges, sparse 64-bit ids), typed errors
// with line numbers, cache round-trip identity, and stale-cache
// invalidation when the source changes underneath a cache file.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "experiments/scenario.hpp"
#include "experiments/specs.hpp"
#include "graph/file_graph.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace rumor {
namespace {

namespace fs = std::filesystem;

std::optional<std::vector<ScenarioSpec>> parse_scenarios(
    const std::string& text, std::string* error = nullptr) {
  std::istringstream in(text);
  return parse_scenario_stream(in, error);
}

// Unique scratch directory per test, removed on teardown so .rcsr caches
// from one test can never satisfy another.
class GraphFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rumor_graph_file_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string write_file(const std::string& name, const std::string& text) {
    const fs::path p = dir_ / name;
    std::ofstream out(p);
    out << text;
    return p.string();
  }

  fs::path dir_;
};

void expect_same_structure(const Graph& got, const Graph& want) {
  ASSERT_EQ(got.num_vertices(), want.num_vertices());
  ASSERT_EQ(got.num_edges(), want.num_edges());
  EXPECT_EQ(got.min_degree(), want.min_degree());
  EXPECT_EQ(got.max_degree(), want.max_degree());
  for (Vertex v = 0; v < want.num_vertices(); ++v) {
    ASSERT_EQ(got.degree(v), want.degree(v)) << "v=" << v;
    for (std::uint32_t i = 0; i < want.degree(v); ++i) {
      EXPECT_EQ(got.neighbor(v, i), want.neighbor(v, i)) << "v=" << v;
      EXPECT_EQ(got.edge_id(v, i), want.edge_id(v, i)) << "v=" << v;
    }
  }
  for (EdgeId e = 0; e < want.num_edges(); ++e) {
    EXPECT_EQ(got.edge_endpoints(e), want.edge_endpoints(e)) << "e=" << e;
  }
  EXPECT_EQ(got.properties().connected, want.properties().connected);
  EXPECT_EQ(got.properties().bipartite, want.properties().bipartite);
}

TEST_F(GraphFileTest, ParsesCommentsBlanksDuplicatesAndReversedEdges) {
  // A messy rendition of the 5-cycle: full-line and trailing comments,
  // blank lines, a duplicate edge, and a reversed duplicate.
  const std::string path = write_file("cycle5.txt",
                                      "# SNAP-style header comment\n"
                                      "\n"
                                      "0 1\n"
                                      "1 2  # trailing comment\n"
                                      "2 3\n"
                                      "3 4\n"
                                      "0 1\n"       // duplicate
                                      "4 3\n"       // reversed duplicate
                                      "\n"
                                      "4 0\n");
  const Graph g = load_file_graph(path);
  EXPECT_EQ(g.backend(), GraphBackend::mapped);
  expect_same_structure(g, gen::cycle(5));
}

TEST_F(GraphFileTest, SparseIdsRemapDenselyInAscendingOrder) {
  // Original ids 7, 100, 42, 2^40 must compact to 0..3 by ascending
  // original id: 7->0, 42->1, 100->2, 2^40->3. Path: 7-42-100-2^40.
  const std::string path = write_file("sparse.txt",
                                      "7 42\n"
                                      "100 42\n"
                                      "1099511627776 100\n");
  const Graph g = load_file_graph(path);
  ASSERT_EQ(g.num_vertices(), 4u);
  ASSERT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST_F(GraphFileTest, SelfLoopErrorCarriesPathAndLineNumber) {
  const std::string path = write_file("loop.txt",
                                      "# header\n"
                                      "0 1\n"
                                      "2 2\n");
  try {
    (void)load_file_graph(path);
    FAIL() << "expected GraphFileError";
  } catch (const GraphFileError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find(":3:"), std::string::npos) << what;
    EXPECT_NE(what.find("self loop"), std::string::npos) << what;
  }
}

TEST_F(GraphFileTest, MissingFileAndEmptyFileAreTypedErrors) {
  EXPECT_THROW((void)load_file_graph((dir_ / "nope.txt").string()),
               GraphFileError);
  const std::string empty = write_file("empty.txt", "# only comments\n\n");
  EXPECT_THROW((void)load_file_graph(empty), GraphFileError);
  EXPECT_THROW((void)probe_file_graph(empty), GraphFileError);
}

TEST_F(GraphFileTest, MalformedLinesAreTypedErrors) {
  EXPECT_THROW((void)load_file_graph(write_file("one_tok.txt", "0\n")),
               GraphFileError);
  EXPECT_THROW((void)load_file_graph(write_file("three_tok.txt", "0 1 2\n")),
               GraphFileError);
  EXPECT_THROW(
      (void)load_file_graph(write_file("alpha.txt", "zero one\n")),
      GraphFileError);
}

TEST_F(GraphFileTest, CacheRoundTripIsStructurallyIdentical) {
  const std::string path = write_file("star.txt",
                                      "0 1\n0 2\n0 3\n0 4\n0 5\n0 6\n");
  const std::string cache = file_graph_cache_path(path);
  ASSERT_FALSE(fs::exists(cache));

  // First load parses the source and writes the cache.
  const Graph first = load_file_graph(path);
  ASSERT_TRUE(fs::exists(cache));
  const FileGraphInfo info = probe_file_graph(path);
  EXPECT_TRUE(info.cache_was_fresh);
  EXPECT_EQ(info.n, 7u);
  EXPECT_EQ(info.m, 6u);
  EXPECT_EQ(info.cache_bytes, fs::file_size(cache));

  // Second load must answer from the cache: swap in a same-size source
  // with different edges (a path, not a star) and restore the mtime so the
  // staleness stamp still matches. A re-parse would yield the path graph;
  // the cache answers with the original star.
  const auto stamp = fs::last_write_time(path);
  write_file("star.txt", "0 1\n1 2\n2 3\n3 4\n4 5\n5 6\n");
  fs::last_write_time(path, stamp);
  const Graph second = load_file_graph(path);
  expect_same_structure(second, first);
  expect_same_structure(second, gen::star(6));
}

TEST_F(GraphFileTest, StaleCacheIsRebuiltWhenSourceChanges) {
  const std::string path = write_file("grow.txt", "0 1\n1 2\n2 0\n");
  const Graph before = load_file_graph(path);
  EXPECT_EQ(before.num_vertices(), 3u);

  // Rewrite the source with a different byte count — the size component of
  // the staleness stamp flips even when mtime granularity is coarse.
  write_file("grow.txt", "0 1\n1 2\n2 3\n3 0\n");
  const FileGraphInfo info = probe_file_graph(path);
  EXPECT_FALSE(info.cache_was_fresh);
  EXPECT_EQ(info.n, 4u);
  EXPECT_EQ(info.m, 4u);
  expect_same_structure(load_file_graph(path), gen::cycle(4));
}

TEST_F(GraphFileTest, CorruptCacheFallsBackToSource) {
  const std::string path = write_file("c.txt", "0 1\n1 2\n2 0\n");
  (void)load_file_graph(path);  // build the cache
  // Truncate the cache to garbage; the loader must detect the bad header
  // and rebuild from the source instead of mapping junk.
  {
    std::ofstream out(file_graph_cache_path(path), std::ios::trunc);
    out << "junk";
  }
  const Graph g = load_file_graph(path);
  expect_same_structure(g, gen::cycle(3));
}

TEST_F(GraphFileTest, SpecGrammarRoundTripsFilePaths) {
  const std::string path = write_file("g.txt", "0 1\n");
  std::string error;
  const auto spec = GraphSpec::parse("file:" + path, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->family, Family::file);
  EXPECT_EQ(spec->path, path);
  EXPECT_EQ(spec->name(), "file:" + path);

  const auto again = GraphSpec::parse(spec->name(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(*again, *spec);
  EXPECT_EQ(spec->resolved_backend(), GraphBackend::mapped);
}

TEST_F(GraphFileTest, ScenarioValidationRejectsBadFileBeforeTrials) {
  // Validation must fail with the typed loader message (exit-2 path in the
  // CLI), not crash, and must not leave a cache behind for a bad source.
  const std::string bad = write_file("bad.txt", "5 5\n");
  std::string error;
  auto specs = parse_scenarios("file:" + bad + " push source=0 trials=1\n");
  ASSERT_TRUE(specs.has_value());
  EXPECT_FALSE(validate_scenarios(*specs, &error));
  EXPECT_NE(error.find("self loop"), std::string::npos) << error;
  EXPECT_FALSE(fs::exists(file_graph_cache_path(bad)));
}

TEST_F(GraphFileTest, ScenarioRunOnFileGraphMatchesGeneratedGraph) {
  // A file rendition of star(8) must produce byte-identical trial stats to
  // the generated star(8) under the same seed — the mapped backend's
  // sorted CSR and edge ids are the same arrays the owned build makes.
  std::string text;
  for (int leaf = 1; leaf <= 8; ++leaf)
    text += "0 " + std::to_string(leaf) + "\n";
  const std::string path = write_file("star8.txt", text);

  std::string error;
  auto from_file =
      parse_scenarios("file:" + path + " push source=1 trials=6 seed=99\n");
  auto from_gen =
      parse_scenarios("star(leaves=8) push source=1 trials=6 seed=99\n");
  ASSERT_TRUE(from_file.has_value() && from_gen.has_value());

  const auto a = run_scenario(from_file->front(), &error);
  ASSERT_TRUE(a.has_value()) << error;
  const auto b = run_scenario(from_gen->front(), &error);
  ASSERT_TRUE(b.has_value()) << error;
  EXPECT_EQ(a->n, b->n);
  EXPECT_EQ(a->edges, b->edges);
  EXPECT_EQ(a->set.rounds, b->set.rounds);
}

TEST_F(GraphFileTest, ProbeMatchesMappedGraphMemoryEstimate) {
  const std::string path = write_file("p.txt", "0 1\n1 2\n2 3\n");
  std::string error;
  const auto spec = GraphSpec::parse("file:" + path, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  const auto probe = spec->probe(&error);
  ASSERT_TRUE(probe.has_value()) << error;
  EXPECT_EQ(probe->backend, GraphBackend::mapped);
  EXPECT_EQ(probe->n, 4u);
  EXPECT_EQ(probe->m, 3u);
  EXPECT_FALSE(probe->m_estimated);
  EXPECT_EQ(probe->graph_bytes, fs::file_size(file_graph_cache_path(path)));

  // A nonexistent path reports through *error instead of throwing.
  const auto missing =
      GraphSpec::parse("file:" + (dir_ / "gone.txt").string(), &error);
  ASSERT_TRUE(missing.has_value()) << error;
  EXPECT_FALSE(missing->probe(&error).has_value());
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace rumor

// Graph (CSR) and GraphBuilder invariant tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "graph/builder.hpp"
#include "graph/graph.hpp"

namespace rumor {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  return b.build();
}

TEST(Graph, TriangleBasics) {
  const Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.total_degree(), 6u);
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Graph, NeighborsAreSorted) {
  GraphBuilder b(6);
  b.add_edge(3, 5);
  b.add_edge(3, 1);
  b.add_edge(3, 4);
  b.add_edge(3, 0);
  const Graph g = b.build();
  const auto nbrs = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(Graph, HasEdgeBothDirections) {
  const Graph g = triangle();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g2 = b.build();
  EXPECT_FALSE(g2.has_edge(0, 2));
  EXPECT_FALSE(g2.has_edge(1, 3));
}

TEST(Graph, EdgeIdsAreConsistentAcrossOrientations) {
  const Graph g = triangle();
  // For every adjacency slot, the edge id must round-trip to endpoints
  // containing both vertices.
  std::set<EdgeId> seen;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (std::uint32_t i = 0; i < g.degree(v); ++i) {
      const EdgeId e = g.edge_id(v, i);
      seen.insert(e);
      const auto [a, b] = g.edge_endpoints(e);
      const Vertex w = g.neighbor(v, i);
      EXPECT_TRUE((a == v && b == w) || (a == w && b == v));
      EXPECT_LT(a, b);
    }
  }
  EXPECT_EQ(seen.size(), g.num_edges());  // ids are dense and all used
}

TEST(Graph, RandomNeighborIsAlwaysAdjacent) {
  GraphBuilder b(8);
  for (Vertex v = 1; v < 8; ++v) b.add_edge(0, v);
  const Graph g = b.build();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Vertex v = g.random_neighbor(0, rng);
    EXPECT_GE(v, 1u);
    EXPECT_LT(v, 8u);
  }
  for (int i = 0; i < 50; ++i) EXPECT_EQ(g.random_neighbor(3, rng), 0u);
}

TEST(Graph, RandomNeighborUniformity) {
  GraphBuilder b(5);
  for (Vertex v = 1; v < 5; ++v) b.add_edge(0, v);
  const Graph g = b.build();
  Rng rng(17);
  std::vector<int> counts(5, 0);
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[g.random_neighbor(0, rng)];
  for (Vertex v = 1; v < 5; ++v) {
    EXPECT_NEAR(counts[v], kDraws / 4.0, 5 * std::sqrt(kDraws / 4.0));
  }
}

TEST(Graph, RandomNeighborSlotMatchesNeighbor) {
  const Graph g = triangle();
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto [v, slot] = g.random_neighbor_slot(1, rng);
    EXPECT_EQ(g.neighbor(1, slot), v);
  }
}

TEST(Builder, AddEdgeOnceDeduplicates) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge_once(1, 0);  // duplicate in reverse orientation
  b.add_edge_once(1, 2);
  b.add_edge_once(2, 1);  // duplicate
  EXPECT_EQ(b.num_edges(), 2u);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Builder, AddClique) {
  GraphBuilder b(5);
  const std::vector<Vertex> members{1, 2, 4};
  b.add_clique(members);
  const Graph g = b.build();
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(1, 4));
  EXPECT_TRUE(g.has_edge(2, 4));
  EXPECT_EQ(g.degree(0), 0u);
}

using GraphDeathTest = ::testing::Test;

TEST(GraphDeathTest, RejectsSelfLoop) {
  GraphBuilder b(3);
  EXPECT_DEATH(b.add_edge(1, 1), "precondition");
}

TEST(GraphDeathTest, RejectsOutOfRange) {
  GraphBuilder b(3);
  EXPECT_DEATH(b.add_edge(0, 3), "precondition");
}

TEST(GraphDeathTest, RejectsDuplicateAtBuild) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  EXPECT_DEATH((void)b.build(), "precondition");
}

}  // namespace
}  // namespace rumor

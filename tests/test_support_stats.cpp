// Statistics, fitting, and bootstrap unit tests.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/bootstrap.hpp"
#include "support/fit.hpp"
#include "support/stats.hpp"

namespace rumor {
namespace {

TEST(Summary, KnownSample) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = Summary::of(v);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 1e-3);  // sample sd with n-1
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
}

TEST(Summary, EmptyIsAllZero) {
  const Summary s = Summary::of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, SingleElement) {
  const std::vector<double> v{3.5};
  const Summary s = Summary::of(v);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
}

TEST(Quantile, LinearInterpolation) {
  const std::vector<double> v{1, 2, 3, 4};  // sorted
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0 / 3.0), 2.0);
}

TEST(FitLinear, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{3, 5, 7, 9, 11};  // y = 2x + 1
  const LinearFit f = fit_linear(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(FitLinear, DegenerateConstantX) {
  const std::vector<double> x{2, 2, 2};
  const std::vector<double> y{1, 2, 3};
  const LinearFit f = fit_linear(x, y);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 2.0);
}

TEST(FitPower, RecoverExponent) {
  // T = 3 * n^1.5
  std::vector<double> n, t;
  for (double x : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
    n.push_back(x);
    t.push_back(3.0 * std::pow(x, 1.5));
  }
  const LinearFit f = fit_power(n, t);
  EXPECT_NEAR(f.slope, 1.5, 1e-9);
  EXPECT_NEAR(std::exp(f.intercept), 3.0, 1e-9);
}

TEST(FitLogLaw, RecoverCoefficients) {
  // T = 7*ln n + 2
  std::vector<double> n, t;
  for (double x : {64.0, 256.0, 1024.0, 4096.0}) {
    n.push_back(x);
    t.push_back(7.0 * std::log(x) + 2.0);
  }
  const LinearFit f = fit_log_law(n, t);
  EXPECT_NEAR(f.slope, 7.0, 1e-9);
  EXPECT_NEAR(f.intercept, 2.0, 1e-9);
}

TEST(ClassifyGrowth, DetectsLogarithmic) {
  std::vector<double> n, t;
  for (double x = 256; x <= 1 << 20; x *= 4) {
    n.push_back(x);
    t.push_back(5.0 * std::log(x) + 3.0);
  }
  const LawVerdict v = classify_growth(n, t);
  EXPECT_EQ(v.best, GrowthLaw::logarithmic);
  EXPECT_LT(v.power_exponent, 0.15);
}

TEST(ClassifyGrowth, DetectsLinear) {
  std::vector<double> n, t;
  for (double x = 256; x <= 1 << 18; x *= 4) {
    n.push_back(x);
    t.push_back(0.25 * x);
  }
  const LawVerdict v = classify_growth(n, t);
  EXPECT_NEAR(v.power_exponent, 1.0, 0.05);
  EXPECT_NE(v.best, GrowthLaw::logarithmic);
}

TEST(ClassifyGrowth, DetectsPolynomialTwoThirds) {
  std::vector<double> n, t;
  for (double x = 1024; x <= 1 << 22; x *= 4) {
    n.push_back(x);
    t.push_back(2.0 * std::pow(x, 2.0 / 3.0));
  }
  const LawVerdict v = classify_growth(n, t);
  EXPECT_EQ(v.best, GrowthLaw::power);
  EXPECT_NEAR(v.power_exponent, 2.0 / 3.0, 0.05);
}

TEST(ClassifyGrowth, DetectsLinearithmic) {
  std::vector<double> n, t;
  for (double x = 256; x <= 1 << 18; x *= 4) {
    n.push_back(x);
    t.push_back(0.5 * x * std::log(x));
  }
  const LawVerdict v = classify_growth(n, t);
  EXPECT_EQ(v.best, GrowthLaw::linearithmic);
}

TEST(Bootstrap, CiCoversMeanOfTightSample) {
  const std::vector<double> v{10, 10.1, 9.9, 10.05, 9.95, 10, 10.02, 9.98};
  const BootstrapCi ci = bootstrap_mean_ci(v);
  EXPECT_NEAR(ci.point, 10.0, 0.05);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_LT(ci.hi - ci.lo, 0.2);
}

TEST(Bootstrap, Deterministic) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8};
  const BootstrapCi a = bootstrap_mean_ci(v, 0.95, 500, 123);
  const BootstrapCi b = bootstrap_mean_ci(v, 0.95, 500, 123);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 4
  h.add(5.0);   // bin 2
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
  EXPECT_FALSE(h.render().empty());
}

}  // namespace
}  // namespace rumor

// Executable-proof tests: the coupling invariants of Sections 5–7.
//
// These are the strongest correctness checks in the suite: Lemma 13 and
// Lemma 14 hold ALMOST SURELY under the coupling (not just w.h.p.), so a
// single violation on any seed is a bug in the simulator or in the
// mechanized proof object.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/coupling/coupled_push_visitx.hpp"
#include "core/coupling/coupled_walk_protocols.hpp"
#include "core/coupling/odd_even_coupling.hpp"
#include "core/coupling/shared_choices.hpp"
#include "graph/generators.hpp"

namespace rumor {
namespace {

TEST(SharedChoices, LazyMaterializationAndStability) {
  const Graph g = gen::complete(8);
  SharedChoices choices(g, 42);
  EXPECT_EQ(choices.materialized(3), 0u);
  const Vertex w5 = choices.get(3, 5);
  EXPECT_EQ(choices.materialized(3), 5u);
  // Re-reading returns the identical value (the whole point of sharing).
  EXPECT_EQ(choices.get(3, 5), w5);
  EXPECT_EQ(choices.get(3, 2), choices.get(3, 2));
  // Values are neighbors of the queried vertex.
  for (std::size_t i = 1; i <= 20; ++i) {
    EXPECT_TRUE(g.has_edge(3, choices.get(3, i)));
  }
}

TEST(SharedChoices, RoughlyUniformOverNeighbors) {
  const Graph g = gen::star(4);  // center 0 with 4 leaves
  SharedChoices choices(g, 7);
  std::vector<int> counts(5, 0);
  for (std::size_t i = 1; i <= 40000; ++i) ++counts[choices.get(0, i)];
  for (Vertex leaf = 1; leaf <= 4; ++leaf) {
    EXPECT_NEAR(counts[leaf], 10000, 5 * std::sqrt(10000.0));
  }
}

// Lemma 13 (τ_u ≤ C_u(t_u)) across graph families and seeds. Parameterized
// over (family index, seed).
class Lemma13Test
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  static Graph make_graph(int family) {
    Rng rng(911 + family);
    switch (family) {
      case 0:
        return gen::random_regular(128, 8, rng);
      case 1:
        return gen::hypercube(7);
      case 2:
        return gen::clique_ring(8, 8);
      case 3:
        return gen::complete(96);
      default:
        return gen::circulant(120, 5);
    }
  }
};

TEST_P(Lemma13Test, TauBoundedByCCounter) {
  const auto [family, seed] = GetParam();
  const Graph g = make_graph(family);
  CoupledPushVisitx coupled(g, 0, seed);
  const CoupledResult r = coupled.run();
  ASSERT_TRUE(r.visitx_completed);
  ASSERT_TRUE(r.push_completed);
  EXPECT_TRUE(r.lemma13_holds);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    EXPECT_LE(r.push_inform_round[u], r.ccounter_at_inform[u]) << "u=" << u;
  }
  // And hence T_push ≤ max_u C_u(t_u), the step used in Theorem 10.
  EXPECT_LE(r.push_rounds, r.max_ccounter);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, Lemma13Test,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 6ULL)));

TEST(Lemma14, CanonicalWalkCongestionEqualsCCounter) {
  // Reconstruct the information path via the parent pointers and check
  // Q(θ) == C_u(t) for every vertex at t = t_u, plus spot checks at later t.
  Rng grng(5);
  const Graph g = gen::random_regular(64, 8, grng);
  CoupledOptions options;
  options.record_occupancy_history = true;
  CoupledPushVisitx coupled(g, 0, 77, options);
  const CoupledResult r = coupled.run();
  ASSERT_TRUE(r.visitx_completed);
  const auto& occ = coupled.occupancy_history();
  ASSERT_EQ(occ.size(), r.visitx_rounds + 1);  // rounds 0..T

  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    // Walk the parent chain back to the source, collecting inform times.
    std::vector<Vertex> path;
    Vertex v = u;
    while (v != kNoVertex) {
      path.push_back(v);
      v = r.parent[v];
    }
    ASSERT_EQ(path.back(), coupled.source());
    // Canonical walk: occupy path[j] during [t_{path[j]}, t_{path[j-1]});
    // congestion counts rounds 0 .. t_u - 1.
    std::uint64_t congestion = 0;
    for (std::size_t j = path.size(); j-- > 0;) {
      const Vertex vertex = path[j];
      const std::uint32_t enter = r.visitx_inform_round[vertex];
      const std::uint32_t leave =
          (j == 0) ? r.visitx_inform_round[u] : r.visitx_inform_round[path[j - 1]];
      for (std::uint32_t t = enter; t < leave; ++t) {
        congestion += occ[t][vertex];
      }
    }
    EXPECT_EQ(congestion, r.ccounter_at_inform[u]) << "u=" << u;

    // Extended walk: appending k extra waiting rounds at u adds the
    // occupancy of u over those rounds (Lemma 14 for t > t_u).
    const std::uint32_t t_u = r.visitx_inform_round[u];
    if (t_u + 3 <= r.visitx_rounds) {
      std::uint64_t extended = congestion;
      for (std::uint32_t t = t_u; t < t_u + 3; ++t) extended += occ[t][u];
      EXPECT_EQ(extended, coupled.ccounter_at(u, t_u + 3)) << "u=" << u;
    }
  }
}

TEST(Lemma13, HoldsWithOnePerVertexStart) {
  // The remark after Lemma 11: the coupling argument needs no assumption on
  // the initial distribution beyond the bound, and holds for the
  // one-walk-per-vertex start as well.
  Rng grng(17);
  const Graph g = gen::random_regular(128, 10, grng);
  CoupledOptions options;
  options.placement = Placement::one_per_vertex;
  options.agent_count = g.num_vertices();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    CoupledPushVisitx coupled(g, 0, seed, options);
    const CoupledResult r = coupled.run();
    ASSERT_TRUE(r.visitx_completed);
    EXPECT_TRUE(r.lemma13_holds) << "seed=" << seed;
  }
}

TEST(Lemma13, CongestionPerRoundIsModest) {
  // Theorem 10's quantitative heart: max_u C_u(t_u) = O(T_visitx) — the
  // congestion-to-rounds ratio stays bounded by a small constant on
  // log-degree regular graphs. β from Lemma 18 is ~2eγ+1; empirically the
  // ratio is far smaller. Use a loose factor to stay robust.
  Rng grng(23);
  const Graph g = gen::random_regular(256, 12, grng);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const CoupledResult r = CoupledPushVisitx(g, 0, seed).run();
    ASSERT_TRUE(r.visitx_completed);
    const double ratio = static_cast<double>(r.max_ccounter) /
                         static_cast<double>(r.visitx_rounds);
    EXPECT_LT(ratio, 25.0) << "seed=" << seed;
  }
}

TEST(OddEven, CoupledRunsCompleteAndRatioBounded) {
  // Lemma 22 empirically: t'_u ≤ c (τ_u + log n) with a modest constant on
  // regular graphs of logarithmic degree.
  Rng grng(29);
  const Graph g = gen::random_regular(256, 12, grng);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const OddEvenResult r = run_odd_even_coupling(g, 0, seed);
    ASSERT_TRUE(r.push_completed);
    ASSERT_TRUE(r.visitx_completed);
    EXPECT_GT(r.max_ratio, 0.0);
    EXPECT_LT(r.max_ratio, 40.0) << "seed=" << seed;
  }
}

// Theorem 23's natural coupling: meetx-informed ⊆ visitx-informed, hence
// R_visitx ≤ T_meetx, for regular and non-regular graphs alike (the subset
// containment is structural).
class NaturalCouplingTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {
 protected:
  static Graph make_graph(int family) {
    Rng rng(1234 + family);
    switch (family) {
      case 0:
        return gen::random_regular(96, 8, rng);
      case 1:
        return gen::complete(64);
      case 2:
        return gen::clique_ring(6, 6);
      default:
        return gen::star(63);  // bipartite: exercises lazy walks
    }
  }
};

TEST_P(NaturalCouplingTest, MeetxInformedSubsetOfVisitx) {
  const auto [family, seed] = GetParam();
  const Graph g = make_graph(family);
  WalkOptions options;
  options.lazy = LazyMode::auto_bipartite;
  const CoupledWalkResult r = run_coupled_walk_protocols(g, 0, seed, options);
  ASSERT_TRUE(r.meetx_completed);
  ASSERT_TRUE(r.visitx_completed);
  EXPECT_TRUE(r.subset_invariant_held);
  EXPECT_LE(r.visitx_agent_rounds, r.meetx_rounds);
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesAndSeeds, NaturalCouplingTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL)));

TEST(NaturalCoupling, StepwiseSubsetHolds) {
  const Graph g = gen::complete(48);
  CoupledWalkProtocols coupled(g, 0, 9);
  EXPECT_TRUE(coupled.meetx_subset_of_visitx());
  for (int i = 0; i < 200 && !(coupled.meetx_done()); ++i) {
    coupled.step();
    ASSERT_TRUE(coupled.meetx_subset_of_visitx()) << "round " << coupled.round();
  }
}

// Guard regression: the coupling machinery must reject non-trivial
// transmission options with the typed error rather than silently running a
// simulation whose subset invariant no longer has a proof behind it. Every
// way TransmissionOptions can become non-trivial is exercised; the trivial
// default must keep constructing.
TEST(NaturalCoupling, RejectsNonTrivialTransmission) {
  const Graph g = gen::complete(16);

  WalkOptions het;
  het.transmission.tp = 0.5;
  EXPECT_THROW(CoupledWalkProtocols(g, 0, 1, het), CouplingOptionsError);
  EXPECT_THROW((void)run_coupled_walk_protocols(g, 0, 1, het),
               CouplingOptionsError);

  WalkOptions deg;
  deg.transmission.degree_scaled = true;
  deg.transmission.tp_exponent = -0.5;
  EXPECT_THROW(CoupledWalkProtocols(g, 0, 1, deg), CouplingOptionsError);

  WalkOptions stifle;
  stifle.transmission.stifle = 3;
  EXPECT_THROW(CoupledWalkProtocols(g, 0, 1, stifle), CouplingOptionsError);

  WalkOptions block;
  block.transmission.block_fraction = 0.1;
  EXPECT_THROW(CoupledWalkProtocols(g, 0, 1, block), CouplingOptionsError);

  // The typed error is also a std::invalid_argument, so generic option
  // validation at the experiment boundary can catch it uniformly.
  try {
    CoupledWalkProtocols coupled(g, 0, 1, het);
    FAIL() << "expected CouplingOptionsError";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("trivial transmission"),
              std::string::npos);
  }

  EXPECT_NO_THROW(CoupledWalkProtocols(g, 0, 1, WalkOptions{}));
}

}  // namespace
}  // namespace rumor

// Frog model tests (related work §2).
#include <gtest/gtest.h>

#include <cmath>

#include "core/frog.hpp"
#include "graph/generators.hpp"
#include "support/stats.hpp"

namespace rumor {
namespace {

TEST(Frog, SourceFrogsWakeAtRoundZero) {
  const Graph g = gen::cycle(10);
  FrogProcess p(g, 3, 1);
  EXPECT_EQ(p.awake_count(), 1u);
  EXPECT_TRUE(p.vertex_visited(3));
  EXPECT_FALSE(p.vertex_visited(4));
  EXPECT_EQ(p.frog_count(), 10u);
}

TEST(Frog, MultipleFrogsPerVertex) {
  const Graph g = gen::cycle(8);
  FrogOptions options;
  options.frogs_per_vertex = 3;
  FrogProcess p(g, 0, 2, options);
  EXPECT_EQ(p.frog_count(), 24u);
  EXPECT_EQ(p.awake_count(), 3u);
}

TEST(Frog, AwakeCountMonotoneAndCompletes) {
  const Graph g = gen::complete(64);
  FrogProcess p(g, 0, 5);
  std::size_t prev = p.awake_count();
  while (!p.done()) {
    p.step();
    EXPECT_GE(p.awake_count(), prev);
    prev = p.awake_count();
  }
  EXPECT_EQ(p.awake_count(), 64u);
}

TEST(Frog, WakeRequiresVisit) {
  // On a path with the source at one end, vertex k cannot wake before
  // round k (frogs move one hop per round).
  const Graph g = gen::path(10);
  FrogProcess p(g, 0, 7);
  for (int t = 1; t < 9; ++t) {
    p.step();
    for (Vertex v = static_cast<Vertex>(t) + 1; v < 10; ++v) {
      EXPECT_FALSE(p.vertex_visited(v)) << "round " << t << " vertex " << v;
    }
  }
}

TEST(Frog, SelfAcceleratesPastSingleWalkCoverTime) {
  // The growing walker population must beat a single walk's cover time by a
  // wide margin on the cycle (Θ(n²) vs the frog model's o(n²)).
  const Vertex n = 64;
  const Graph g = gen::cycle(n);
  std::vector<double> frog_times;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const RunResult r = run_frog(g, 0, seed);
    ASSERT_TRUE(r.completed);
    frog_times.push_back(static_cast<double>(r.rounds));
  }
  const double single_walk_cover = n * (n - 1) / 2.0;  // exact for the cycle
  EXPECT_LT(Summary::of(frog_times).mean, single_walk_cover / 4);
}

TEST(Frog, CompleteGraphLogarithmicScale) {
  // On K_n the awake set roughly doubles per round: O(log n) completion.
  const Vertex n = 1024;
  const Graph g = gen::complete(n);
  std::vector<double> samples;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    samples.push_back(static_cast<double>(run_frog(g, 0, seed).rounds));
  }
  EXPECT_LT(Summary::of(samples).mean, 6 * std::log2(double(n)));
}

TEST(Frog, TraceConsistency) {
  const Graph g = gen::grid2d(6, 6);
  FrogOptions options;
  options.trace.informed_curve = true;
  options.trace.inform_rounds = true;
  const RunResult r = run_frog(g, 0, 3, options);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.informed_curve.size(), r.rounds + 1);
  EXPECT_EQ(r.informed_curve.back(), 36u);
  std::uint32_t max_round = 0;
  for (std::uint32_t t : r.vertex_inform_round) {
    ASSERT_NE(t, kNeverInformed);
    max_round = std::max(max_round, t);
  }
  EXPECT_EQ(max_round, r.rounds);
}

TEST(Frog, LazyWalksStillComplete) {
  const Graph g = gen::star(32);  // bipartite is fine: frogs wake on visit
  FrogOptions options;
  options.laziness = Laziness::half;
  const RunResult r = run_frog(g, 1, 9, options);
  EXPECT_TRUE(r.completed);
}

TEST(Frog, CutoffReported) {
  const Graph g = gen::cycle(256);
  FrogOptions options;
  options.max_rounds = 3;
  const RunResult r = run_frog(g, 0, 1, options);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 3u);
}

}  // namespace
}  // namespace rumor

// VISIT-EXCHANGE protocol tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"
#include "support/stats.hpp"

namespace rumor {
namespace {

TEST(VisitExchange, SourceAndCohabitantsInformedAtRoundZero) {
  const Graph g = gen::complete(8);
  WalkOptions options;
  options.agent_count = 50;
  VisitExchangeProcess p(g, 3, 7, options);
  EXPECT_TRUE(p.vertex_informed(3));
  EXPECT_EQ(p.informed_vertex_count(), 1u);
  for (Agent a = 0; a < 50; ++a) {
    EXPECT_EQ(p.agent_informed(a), p.agents().position(a) == 3);
  }
}

TEST(VisitExchange, CompletesOnSmallGraphs) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const RunResult r = run_visit_exchange(gen::cycle(16), 0, seed);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.rounds, 0u);
  }
}

TEST(VisitExchange, AgentsCompleteNoLaterThanVertices) {
  // Once every vertex is informed, phase B of that same round informs all
  // remaining agents; individual agents often finish earlier.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const RunResult r = run_visit_exchange(gen::hypercube(6), 0, seed);
    ASSERT_TRUE(r.completed);
    EXPECT_LE(r.agent_rounds, r.rounds);
  }
}

TEST(VisitExchange, MonotoneInformedCounts) {
  const Graph g = gen::grid2d(8, 8);
  WalkOptions options;
  VisitExchangeProcess p(g, 0, 3, options);
  std::uint32_t prev_v = p.informed_vertex_count();
  std::size_t prev_a = p.informed_agent_count();
  while (!p.done()) {
    p.step();
    EXPECT_GE(p.informed_vertex_count(), prev_v);
    EXPECT_GE(p.informed_agent_count(), prev_a);
    prev_v = p.informed_vertex_count();
    prev_a = p.informed_agent_count();
  }
}

TEST(VisitExchange, VertexInformsRequireAgentPresence) {
  // With a single agent, the informed set can grow by at most one vertex
  // per round (the vertex the informed agent visits).
  const Graph g = gen::cycle(12);
  WalkOptions options;
  options.agent_count = 1;
  VisitExchangeProcess p(g, 0, 5, options);
  std::uint32_t prev = p.informed_vertex_count();
  for (int i = 0; i < 200 && !p.done(); ++i) {
    p.step();
    EXPECT_LE(p.informed_vertex_count(), prev + 1);
    prev = p.informed_vertex_count();
  }
}

TEST(VisitExchange, InformRoundTraceConsistency) {
  WalkOptions options;
  options.trace.inform_rounds = true;
  const RunResult r =
      run_visit_exchange(gen::heavy_binary_tree(63), 0, 9, options);
  ASSERT_TRUE(r.completed);
  std::uint32_t max_round = 0;
  for (std::uint32_t t : r.vertex_inform_round) {
    ASSERT_NE(t, kNeverInformed);
    max_round = std::max(max_round, t);
  }
  EXPECT_EQ(max_round, r.rounds);
  // Every informed agent has an inform round no later than the final round.
  for (std::uint32_t t : r.agent_inform_round) {
    EXPECT_LE(t, r.rounds);
  }
}

TEST(VisitExchange, StarIsLogarithmicallyFast) {
  // Lemma 2(c): T_visitx = O(log n) w.h.p. on the star.
  const Vertex leaves = 1024;
  const Graph g = gen::star(leaves);
  std::vector<double> samples;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    samples.push_back(
        static_cast<double>(run_visit_exchange(g, 1, seed).rounds));
  }
  const Summary s = Summary::of(samples);
  // Generous O(log n) band: ~10 * log2(1024) = 100, far below n.
  EXPECT_LT(s.max, 10 * std::log2(leaves));
}

TEST(VisitExchange, AlphaControlsAgentCount) {
  const Graph g = gen::cycle(100);
  WalkOptions half;
  half.alpha = 0.5;
  VisitExchangeProcess p(g, 0, 1, half);
  EXPECT_EQ(p.agents().count(), 50u);
  WalkOptions twice;
  twice.agent_count = 200;
  VisitExchangeProcess q(g, 0, 1, twice);
  EXPECT_EQ(q.agents().count(), 200u);
}

TEST(VisitExchange, FewerAgentsSlower) {
  const Graph g = gen::torus2d(16, 16);
  WalkOptions sparse;
  sparse.alpha = 0.1;
  WalkOptions dense;
  dense.alpha = 2.0;
  std::vector<double> sparse_t, dense_t;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    sparse_t.push_back(
        static_cast<double>(run_visit_exchange(g, 0, seed, sparse).rounds));
    dense_t.push_back(
        static_cast<double>(run_visit_exchange(g, 0, seed, dense).rounds));
  }
  EXPECT_GT(Summary::of(sparse_t).mean, Summary::of(dense_t).mean);
}

TEST(VisitExchange, OnePerVertexPlacementWorks) {
  const Graph g = gen::hypercube(6);
  WalkOptions options;
  options.placement = Placement::one_per_vertex;
  options.agent_count = g.num_vertices();
  const RunResult r = run_visit_exchange(g, 0, 3, options);
  EXPECT_TRUE(r.completed);
}

TEST(VisitExchange, EdgeTrafficSumsToAgentSteps) {
  const Graph g = gen::complete(16);
  WalkOptions options;
  options.agent_count = 16;
  options.trace.edge_traffic = true;
  const RunResult r = run_visit_exchange(g, 0, 11, options);
  ASSERT_TRUE(r.completed);
  std::uint64_t total = 0;
  for (std::uint64_t c : r.edge_traffic) total += c;
  // Non-lazy: every agent crosses exactly one edge per round.
  EXPECT_EQ(total, 16u * r.rounds);
}

TEST(VisitExchange, CutoffReportsIncomplete) {
  const Graph g = gen::heavy_binary_tree(4095);
  WalkOptions options;
  options.max_rounds = 2;  // heavy tree needs Ω(n) to reach the root
  const RunResult r = run_visit_exchange(g, 4094, 1, options);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 2u);
}

TEST(VisitExchange, DeterministicGivenSeed) {
  const Graph g = gen::grid2d(10, 10);
  const RunResult a = run_visit_exchange(g, 0, 777);
  const RunResult b = run_visit_exchange(g, 0, 777);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.agent_rounds, b.agent_rounds);
}

}  // namespace
}  // namespace rumor

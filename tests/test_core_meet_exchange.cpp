// MEET-EXCHANGE protocol tests, including the bipartite/lazy-walk regime
// the paper calls out in §3.
#include <gtest/gtest.h>

#include <cmath>

#include "core/meet_exchange.hpp"
#include "graph/generators.hpp"
#include "support/stats.hpp"

namespace rumor {
namespace {

TEST(MeetExchange, AgentsOnSourceInformedAtRoundZero) {
  const Graph g = gen::complete(6);
  WalkOptions options = MeetExchangeProcess::default_options();
  options.agent_count = 40;
  MeetExchangeProcess p(g, 2, 3, options);
  std::size_t on_source = 0;
  for (Agent a = 0; a < 40; ++a) {
    if (p.agents().position(a) == 2) ++on_source;
    EXPECT_EQ(p.agent_informed(a), p.agents().position(a) == 2);
  }
  EXPECT_EQ(p.informed_agent_count(), on_source);
  EXPECT_EQ(p.source_active(), on_source == 0);
}

TEST(MeetExchange, SourceInformsOnlyFirstCohort) {
  // With all agents started away from the source, the source stays active
  // until its first visitor, then deactivates permanently.
  const Graph g = gen::path(8);
  WalkOptions options = MeetExchangeProcess::default_options();
  options.placement = Placement::at_vertex;
  options.placement_anchor = 0;  // all agents at vertex 0, away from source
  options.agent_count = 4;
  MeetExchangeProcess p(g, 7, 5, options);  // source at the far end
  EXPECT_TRUE(p.source_active());
  EXPECT_EQ(p.informed_agent_count(), 0u);
  bool was_active = true;
  while (!p.done() && p.round() < 100000) {
    p.step();
    if (!p.source_active() && was_active) {
      // Deactivation must coincide with the first informs.
      EXPECT_GT(p.informed_agent_count(), 0u);
      was_active = false;
    }
  }
  EXPECT_FALSE(p.source_active());
}

TEST(MeetExchange, CompletesOnNonBipartiteGraphs) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const RunResult r = run_meet_exchange(gen::complete(32), 0, seed);
    EXPECT_TRUE(r.completed);
  }
}

TEST(MeetExchange, AutoLazinessOnBipartiteGraphs) {
  const Graph star = gen::star(16);
  MeetExchangeProcess lazy(star, 0, 1);
  EXPECT_EQ(lazy.laziness(), Laziness::half);
  const Graph odd_cycle = gen::cycle(9);
  MeetExchangeProcess nonlazy(odd_cycle, 0, 1);
  EXPECT_EQ(nonlazy.laziness(), Laziness::none);
}

TEST(MeetExchange, NonLazyBipartiteCanStall) {
  // On the 2-path (single edge) with one agent per vertex and a non-lazy
  // walk, the two agents swap endpoints forever and never meet; only the
  // source visit informs one of them. The run must hit the cutoff.
  const Graph g = gen::path(2);
  WalkOptions options;  // LazyMode::never
  options.placement = Placement::one_per_vertex;
  options.agent_count = 2;
  options.max_rounds = 5000;
  const RunResult r = run_meet_exchange(g, 0, 3, options);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.rounds, 5000u);
}

TEST(MeetExchange, LazyWalksResolveTheSameInstance) {
  const Graph g = gen::path(2);
  WalkOptions options;
  options.lazy = LazyMode::always;
  options.placement = Placement::one_per_vertex;
  options.agent_count = 2;
  options.max_rounds = 100000;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const RunResult r = run_meet_exchange(g, 0, seed, options);
    EXPECT_TRUE(r.completed);
  }
}

TEST(MeetExchange, MonotoneInformedCount) {
  const Graph g = gen::complete(48);
  WalkOptions options = MeetExchangeProcess::default_options();
  MeetExchangeProcess p(g, 0, 9, options);
  std::size_t prev = p.informed_agent_count();
  while (!p.done() && p.round() < 100000) {
    p.step();
    EXPECT_GE(p.informed_agent_count(), prev);
    prev = p.informed_agent_count();
  }
  EXPECT_TRUE(p.done());
}

TEST(MeetExchange, StarLogarithmicWithLazyWalks) {
  // Lemma 2(d): T_meetx = O(log n) w.h.p. on the star (lazy walks meet at
  // the center at constant rate).
  const Vertex leaves = 512;
  const Graph g = gen::star(leaves);
  std::vector<double> samples;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    samples.push_back(
        static_cast<double>(run_meet_exchange(g, 1, seed).rounds));
  }
  EXPECT_LT(Summary::of(samples).max, 18 * std::log2(leaves));
}

TEST(MeetExchange, InformRoundsTraceConsistent) {
  WalkOptions options = MeetExchangeProcess::default_options();
  options.trace.inform_rounds = true;
  const RunResult r = run_meet_exchange(gen::complete(32), 0, 4, options);
  ASSERT_TRUE(r.completed);
  std::uint32_t max_round = 0;
  for (std::uint32_t t : r.agent_inform_round) {
    ASSERT_NE(t, kNeverInformed);
    max_round = std::max(max_round, t);
  }
  EXPECT_EQ(max_round, r.rounds);
}

TEST(MeetExchange, DeterministicGivenSeed) {
  const Graph g = gen::complete(64);
  const RunResult a = run_meet_exchange(g, 0, 31337);
  const RunResult b = run_meet_exchange(g, 0, 31337);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(MeetExchange, InformedCurveTracksAgents) {
  WalkOptions options = MeetExchangeProcess::default_options();
  options.trace.informed_curve = true;
  options.agent_count = 64;
  const RunResult r = run_meet_exchange(gen::complete(64), 0, 8, options);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.informed_curve.size(), r.rounds + 1);
  EXPECT_EQ(r.informed_curve.back(), 64u);
  for (std::size_t i = 1; i < r.informed_curve.size(); ++i) {
    EXPECT_GE(r.informed_curve[i], r.informed_curve[i - 1]);
  }
}

}  // namespace
}  // namespace rumor

// Sweep grammar + cross-scenario trial scheduler.
//
// Spec layer: one line with ranges/lists expands into a canonical scenario
// series (derived labels, parse(name()) round-trip on every expanded
// spec), and malformed sweeps — empty, inverted, overflowing — are
// rejected at parse time. Scheduling layer: the global (scenario, trial)
// work queue produces sample vectors that are byte-identical for 1 worker,
// N workers, and the pre-refactor per-scenario path, with in-file-order
// completion callbacks.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "experiments/report.hpp"
#include "experiments/scenario.hpp"
#include "graph/generators.hpp"
#include "support/spec_text.hpp"
#include "support/thread_pool.hpp"
#include "support/trial_arena.hpp"

namespace rumor {
namespace {

std::vector<std::string> expanded_names(const std::string& line) {
  std::string error;
  const auto specs = expand_scenario_line(line, &error);
  EXPECT_TRUE(specs) << line << ": " << error;
  std::vector<std::string> names;
  if (specs) {
    for (const ScenarioSpec& spec : *specs) names.push_back(spec.name());
  }
  return names;
}

// ---- Sweep value substrate --------------------------------------------

TEST(SweepValues, MagnitudeSuffixesAndCompactFormRoundTrip) {
  EXPECT_EQ(spec_text::parse_magnitude("2k"), 2048u);
  EXPECT_EQ(spec_text::parse_magnitude("32k"), 32768u);
  EXPECT_EQ(spec_text::parse_magnitude("3m"), 3u * 1024 * 1024);
  EXPECT_EQ(spec_text::parse_magnitude("100"), 100u);
  EXPECT_FALSE(spec_text::parse_magnitude("k"));
  EXPECT_FALSE(spec_text::parse_magnitude("2q"));
  EXPECT_FALSE(spec_text::parse_magnitude(""));
  // Suffix multiplication must not silently wrap.
  EXPECT_FALSE(spec_text::parse_magnitude("99999999999999999999k"));
  EXPECT_FALSE(spec_text::parse_magnitude("18446744073709551615k"));

  EXPECT_EQ(spec_text::fmt_magnitude(2048), "2k");
  EXPECT_EQ(spec_text::fmt_magnitude(32768), "32k");
  EXPECT_EQ(spec_text::fmt_magnitude(3u * 1024 * 1024), "3m");
  EXPECT_EQ(spec_text::fmt_magnitude(100), "100");
  EXPECT_EQ(spec_text::fmt_magnitude(0), "0");
  for (std::uint64_t v : {1ull, 100ull, 1024ull, 2048ull, 1048576ull}) {
    EXPECT_EQ(spec_text::parse_magnitude(spec_text::fmt_magnitude(v)), v);
  }
}

TEST(SweepValues, RangesExpandGeometricallyByDefault) {
  const auto values = spec_text::expand_sweep_value("2k..32k");
  ASSERT_TRUE(values);
  EXPECT_EQ(*values, (std::vector<std::string>{"2048", "4096", "8192",
                                               "16384", "32768"}));
  const auto factor4 = spec_text::expand_sweep_value("2k..32k:factor=4");
  ASSERT_TRUE(factor4);
  EXPECT_EQ(*factor4, (std::vector<std::string>{"2048", "8192", "32768"}));
  const auto stepped = spec_text::expand_sweep_value("100..500:step=200");
  ASSERT_TRUE(stepped);
  EXPECT_EQ(*stepped, (std::vector<std::string>{"100", "300", "500"}));
  // Points past hi are dropped, hi itself appears only on exact landing.
  const auto inexact = spec_text::expand_sweep_value("3..20:factor=3");
  ASSERT_TRUE(inexact);
  EXPECT_EQ(*inexact, (std::vector<std::string>{"3", "9"}));
  const auto single = spec_text::expand_sweep_value("7..7");
  ASSERT_TRUE(single);
  EXPECT_EQ(*single, (std::vector<std::string>{"7"}));
}

TEST(SweepValues, ListsKeepItemTextVerbatim) {
  const auto values = spec_text::expand_sweep_value("{0.5, 1, 2}");
  ASSERT_TRUE(values);
  EXPECT_EQ(*values, (std::vector<std::string>{"0.5", "1", "2"}));
}

TEST(SweepValues, RejectsEmptyInvertedAndOverflowingRanges) {
  std::string error;
  EXPECT_FALSE(spec_text::expand_sweep_value("32k..2k", &error));
  EXPECT_NE(error.find("inverted"), std::string::npos);
  EXPECT_FALSE(spec_text::expand_sweep_value("{}", &error));
  EXPECT_FALSE(spec_text::expand_sweep_value("{1,,2}", &error));
  EXPECT_FALSE(spec_text::expand_sweep_value("..8", &error));
  EXPECT_FALSE(spec_text::expand_sweep_value("1..", &error));
  EXPECT_FALSE(
      spec_text::expand_sweep_value("1..99999999999999999999999", &error));
  EXPECT_FALSE(spec_text::expand_sweep_value("1..8:factor=1", &error));
  EXPECT_FALSE(spec_text::expand_sweep_value("1..8:step=0", &error));
  EXPECT_FALSE(spec_text::expand_sweep_value("1..8:warp=2", &error));
  // 1..2^40 by factor 2 is 41 points — fine; by step 1 is > kMaxSweepPoints.
  EXPECT_TRUE(spec_text::expand_sweep_value("1..1099511627776", &error));
  EXPECT_FALSE(spec_text::expand_sweep_value("1..1099511627776:step=1",
                                             &error));
  EXPECT_NE(error.find("points"), std::string::npos);
}

// ---- Line expansion ----------------------------------------------------

TEST(SweepExpansion, LinesWithoutSweepsParseUnchanged) {
  const auto names =
      expanded_names("star(leaves=8192) push source=1 label=push");
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "star(leaves=8192) push source=1 label=push");
}

TEST(SweepExpansion, GraphRangeExpandsWithDerivedLabels) {
  const auto names =
      expanded_names("star(leaves=2k..32k:factor=4) push source=1 label=push");
  EXPECT_EQ(names, (std::vector<std::string>{
                       "star(leaves=2048) push source=1 label=push/2k",
                       "star(leaves=8192) push source=1 label=push/8k",
                       "star(leaves=32768) push source=1 label=push/32k"}));
}

TEST(SweepExpansion, CrossProductIsLeftmostSlowest) {
  const auto names = expanded_names(
      "complete(n={16,32}) visit-exchange(alpha={0.5,0.25}) trials=3 "
      "label=vx");
  EXPECT_EQ(names,
            (std::vector<std::string>{
                "complete(n=16) visit-exchange(alpha=0.5) trials=3 "
                "label=vx/16/0.5",
                "complete(n=16) visit-exchange(alpha=0.25) trials=3 "
                "label=vx/16/0.25",
                "complete(n=32) visit-exchange(alpha=0.5) trials=3 "
                "label=vx/32/0.5",
                "complete(n=32) visit-exchange(alpha=0.25) trials=3 "
                "label=vx/32/0.25"}));
}

TEST(SweepExpansion, PlanKeysSweepToo) {
  const auto names = expanded_names("complete(n=16) push trials={2,4}");
  EXPECT_EQ(names, (std::vector<std::string>{"complete(n=16) push trials=2",
                                             "complete(n=16) push trials=4"}));
}

TEST(SweepExpansion, EveryExpandedSpecRoundTrips) {
  std::string error;
  const auto specs = expand_scenario_line(
      "circulant(n=256..1k,k={2,4}) meet-exchange(lazy={always,never}) "
      "trials=5 seed=7 label=mx",
      &error);
  ASSERT_TRUE(specs) << error;
  EXPECT_EQ(specs->size(), 3u * 2u * 2u);
  for (const ScenarioSpec& spec : *specs) {
    const auto reparsed = ScenarioSpec::parse(spec.name(), &error);
    ASSERT_TRUE(reparsed) << spec.name() << ": " << error;
    EXPECT_EQ(*reparsed, spec) << spec.name();
  }
}

TEST(SweepExpansion, Fig1aSweepReproducesExplicitScenarioLines) {
  // The acceptance criterion: the 4-line sweep form of fig1a.scn expands
  // to exactly the twelve hand-written canonical specs it replaced.
  std::istringstream sweep(
      "star(leaves=2k..32k:factor=4) push           source=1 label=push\n"
      "star(leaves=2k..32k:factor=4) push-pull      source=1 "
      "label=push-pull\n"
      "star(leaves=2k..32k:factor=4) visit-exchange source=1 "
      "label=visit-exchange\n"
      "star(leaves=2k..32k:factor=4) meet-exchange  source=1 "
      "label=meet-exchange\n");
  std::string error;
  const auto specs = parse_scenario_stream(sweep, &error);
  ASSERT_TRUE(specs) << error;
  std::vector<std::string> names;
  for (const ScenarioSpec& spec : *specs) names.push_back(spec.name());
  std::vector<std::string> expected;
  for (const char* protocol :
       {"push", "push-pull", "visit-exchange", "meet-exchange"}) {
    for (const char* size : {"2048", "8192", "32768"}) {
      std::string compact = size == std::string("2048")    ? "2k"
                            : size == std::string("8192") ? "8k"
                                                          : "32k";
      expected.push_back("star(leaves=" + std::string(size) + ") " +
                         protocol + " source=1 label=" + protocol + "/" +
                         compact);
    }
  }
  EXPECT_EQ(names, expected);
}

TEST(SweepExpansion, SweptLabelGetsNoSelfSuffix) {
  const auto names = expanded_names("complete(n=16) push label={a,b}");
  EXPECT_EQ(names, (std::vector<std::string>{"complete(n=16) push label=a",
                                             "complete(n=16) push label=b"}));
}

TEST(SweepExpansion, DottedLabelsAreNotRanges) {
  // The label is free text: "run1..2" was a legal label before sweeps
  // existed and must stay one (ranges only apply to numeric keys).
  const auto names =
      expanded_names("star(leaves=8192) push label=run1..2");
  EXPECT_EQ(names, (std::vector<std::string>{
                       "star(leaves=8192) push label=run1..2"}));
}

TEST(SweepExpansion, RejectsBadSweepsWithReasons) {
  std::string error;
  EXPECT_FALSE(
      expand_scenario_line("star(leaves=32k..2k) push", &error));
  EXPECT_NE(error.find("inverted"), std::string::npos);
  EXPECT_FALSE(expand_scenario_line("star(leaves={}) push", &error));
  // Substituted values still face the scalar parser: a non-numeric item
  // in a numeric key fails with the ordinary diagnostic.
  EXPECT_FALSE(expand_scenario_line("star(leaves={8,x}) push", &error));
  EXPECT_NE(error.find("bad value"), std::string::npos);
  // A cross product past the cap is rejected, not materialized.
  EXPECT_FALSE(expand_scenario_line(
      "complete(n=1..100:step=1) push trials=1..100:step=1", &error));
  EXPECT_NE(error.find("cross product"), std::string::npos);
}

// ---- Whole-file validation --------------------------------------------

TEST(ValidateScenarios, ChecksEveryLineWithoutRunningTrials) {
  const auto good = ScenarioSpec::parse("complete(n=16) push trials=3");
  const auto bad = ScenarioSpec::parse("complete(n=16) push source=99");
  ASSERT_TRUE(good);
  ASSERT_TRUE(bad);
  std::string error;
  EXPECT_TRUE(validate_scenarios({*good}, &error)) << error;
  // The bad line is caught even at the end of the file — the CLI relies
  // on this to fail before truncating an existing --csv results file.
  EXPECT_FALSE(validate_scenarios({*good, *bad}, &error));
  EXPECT_NE(error.find("source=99"), std::string::npos);
}

// ---- Graph family signatures (rumor_run --list) ------------------------

TEST(GraphFamilySignatures, ComeFromTheGrammarTable) {
  const auto signatures = graph_family_signatures();
  ASSERT_EQ(signatures.size(), graph_family_names().size());
  // Spot-check one family per parameter shape; the table is the single
  // source of truth, so these only drift if the grammar itself does.
  EXPECT_NE(std::find(signatures.begin(), signatures.end(), "star(leaves)"),
            signatures.end());
  EXPECT_NE(std::find(signatures.begin(), signatures.end(),
                      "grid(rows,cols)"),
            signatures.end());
  EXPECT_NE(std::find(signatures.begin(), signatures.end(),
                      "erdos_renyi(n,p)"),
            signatures.end());
  // Every signature's head parses as a known family name.
  for (const std::string& signature : signatures) {
    const std::string head = signature.substr(0, signature.find('('));
    const auto names = graph_family_names();
    EXPECT_NE(std::find(names.begin(), names.end(), head), names.end())
        << signature;
  }
}

// ---- Cross-scenario scheduler -----------------------------------------

TEST(TrialScheduler, MatchesPerScenarioPathAndIsWorkerCountInvariant) {
  Rng rng(3);
  const Graph star = gen::star(96);
  const Graph circ = gen::circulant(64, 2);
  const ProtocolSpec push_spec = default_spec(Protocol::push);
  const ProtocolSpec visit_spec = default_spec(Protocol::visit_exchange);
  const GraphSpec fresh_spec{Family::random_regular, 48, 4};

  constexpr std::uint64_t kSeed = 20260730ULL;
  auto make_batches = [&](std::vector<TrialSet>& sets) {
    sets.assign(3, TrialSet{});
    std::vector<TrialBatch> batches(3);
    batches[0] = TrialBatch{.graph = &star,
                            .protocol = &push_spec,
                            .source = 1,
                            .trials = 7,
                            .master_seed = kSeed,
                            .out = &sets[0]};
    batches[1] = TrialBatch{.graph = &circ,
                            .protocol = &visit_spec,
                            .source = 0,
                            .trials = 5,
                            .master_seed = kSeed + 1,
                            .out = &sets[1]};
    batches[2] = TrialBatch{.fresh_spec = &fresh_spec,
                            .protocol = &push_spec,
                            .source = 0,
                            .trials = 4,
                            .master_seed = kSeed + 2,
                            .out = &sets[2]};
    return batches;
  };

  // The pre-refactor per-scenario path: one runner call per scenario.
  const TrialSet direct0 = run_trials(star, push_spec, 1, 7, kSeed);
  const TrialSet direct1 = run_trials(circ, visit_spec, 0, 5, kSeed + 1);
  const TrialSet direct2 =
      run_trials_fresh_graph(fresh_spec, push_spec, 0, 4, kSeed + 2);

  // The global queue on pools of 1 and 4 workers.
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(workers);
    std::vector<TrialSet> sets;
    const auto batches = make_batches(sets);
    run_trial_batches(batches, {}, &pool);
    EXPECT_EQ(sets[0].rounds, direct0.rounds) << workers << " workers";
    EXPECT_EQ(sets[0].agent_rounds, direct0.agent_rounds);
    EXPECT_EQ(sets[0].incomplete, direct0.incomplete);
    EXPECT_EQ(sets[1].rounds, direct1.rounds) << workers << " workers";
    EXPECT_EQ(sets[2].rounds, direct2.rounds) << workers << " workers";
  }

  // And the per-scenario path itself still equals a serial re-derivation.
  for (std::size_t i = 0; i < 7; ++i) {
    TrialArena fresh_arena;
    const TrialResult serial =
        run_protocol(star, push_spec, 1, derive_seed(kSeed, i), &fresh_arena);
    EXPECT_EQ(direct0.rounds[i], serial.rounds) << "trial " << i;
  }
}

TEST(TrialScheduler, CompletionCallbacksArriveInBatchOrder) {
  Rng rng(4);
  // Reverse-sorted durations: the LAST batch is the quickest, so without
  // ordering enforcement it would complete (and emit) first on any pool.
  const Graph big = gen::star(512);
  const Graph small = gen::complete(16);
  const ProtocolSpec push_spec = default_spec(Protocol::push);
  std::vector<TrialSet> sets(3);
  std::vector<TrialBatch> batches(3);
  batches[0] = TrialBatch{.graph = &big,
                          .protocol = &push_spec,
                          .source = 1,
                          .trials = 6,
                          .master_seed = 11,
                          .out = &sets[0]};
  batches[1] = TrialBatch{.graph = &small,
                          .protocol = &push_spec,
                          .source = 0,
                          .trials = 6,
                          .master_seed = 12,
                          .out = &sets[1]};
  batches[2] = TrialBatch{.graph = &small,
                          .protocol = &push_spec,
                          .source = 0,
                          .trials = 2,
                          .master_seed = 13,
                          .out = &sets[2]};
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(workers);
    std::vector<std::size_t> order;
    run_trial_batches(
        batches,
        [&](std::size_t b) {
          order.push_back(b);
          // Results for every batch up to b are final at emission time.
          for (std::size_t j = 0; j <= b; ++j) {
            EXPECT_EQ(sets[j].rounds.size(), batches[j].trials);
            for (double r : sets[j].rounds) EXPECT_GT(r, 0.0);
          }
        },
        &pool);
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}))
        << workers << " workers";
  }
}

TEST(TrialScheduler, RunScenariosStreamsResultsInFileOrder) {
  std::istringstream in(
      "star(leaves=128..256) push source=1 trials=3 label=p\n"
      "complete(n=32) visit-exchange trials=3 label=v\n");
  std::string error;
  const auto specs = parse_scenario_stream(in, &error);
  ASSERT_TRUE(specs) << error;
  ASSERT_EQ(specs->size(), 3u);  // 2-point sweep + 1 scalar line
  std::vector<std::size_t> seen;
  ScenarioRunOptions options;
  options.on_result = [&](const ScenarioResult& r, std::size_t index) {
    seen.push_back(index);
    EXPECT_EQ(r.set.rounds.size(), 3u);
  };
  const auto results = run_scenarios(*specs, &error, options);
  ASSERT_TRUE(results) << error;
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ((*results)[0].spec.label, "p/128");
  EXPECT_EQ((*results)[1].spec.label, "p/256");
  EXPECT_EQ((*results)[2].spec.label, "v");
  // The streaming report emits one aligned row per scenario plus header.
  std::ostringstream table_out;
  ScenarioTableStream table(*specs, table_out);
  for (const ScenarioResult& r : *results) table.row(r);
  const std::string table_text = table_out.str();
  EXPECT_NE(table_text.find("p/128"), std::string::npos);
  EXPECT_NE(table_text.find("p/256"), std::string::npos);
  // Streaming CSV matches the batch writer byte for byte.
  std::ostringstream streamed, batch;
  ScenarioCsvStream csv(streamed);
  for (const ScenarioResult& r : *results) csv.row(r);
  write_scenario_csv(batch, *results);
  EXPECT_EQ(streamed.str(), batch.str());
}

TEST(TrialScheduler, QueueCountersAreConsistentAtEveryObservationAndAtDrain) {
  const Graph g = gen::complete(64);
  const ProtocolSpec push_spec = default_spec(Protocol::push);
  std::vector<TrialSet> sets(2);
  std::vector<TrialBatch> batches(2);
  batches[0] = TrialBatch{.graph = &g,
                          .protocol = &push_spec,
                          .source = 0,
                          .trials = 9,
                          .master_seed = 21,
                          .out = &sets[0]};
  batches[1] = TrialBatch{.graph = &g,
                          .protocol = &push_spec,
                          .source = 0,
                          .trials = 7,
                          .master_seed = 22,
                          .out = &sets[1]};
  ThreadPool pool(4);
  TrialCounters counters;
  TrialRunOptions options;
  options.pool = &pool;
  options.counters = &counters;
  // Snapshot on every trial completion, concurrently with the claims: the
  // invariant done <= claimed <= total must hold at every observation.
  options.on_trial_done = [&](std::size_t, std::size_t) {
    const TrialQueueSnapshot snap = counters.snapshot();
    EXPECT_LE(snap.trials_done, snap.trials_claimed);
    EXPECT_LE(snap.trials_claimed, snap.trials_total);
    EXPECT_LE(snap.batches_done, snap.batches_total);
    EXPECT_EQ(snap.trials_total, 16u);
  };
  const TrialRunOutcome outcome = run_trial_batches(batches, options);
  EXPECT_FALSE(outcome.stopped);
  EXPECT_EQ(outcome.trials_run, 16u);
  // Pinned drain state: everything claimed, everything done, every batch
  // retired — the exact numbers --progress and serve STATS report.
  const TrialQueueSnapshot end = counters.snapshot();
  EXPECT_EQ(end.trials_total, 16u);
  EXPECT_EQ(end.trials_claimed, 16u);
  EXPECT_EQ(end.trials_done, 16u);
  EXPECT_EQ(end.in_flight(), 0u);
  EXPECT_EQ(end.queued(), 0u);
  EXPECT_EQ(end.batches_total, 2u);
  EXPECT_EQ(end.batches_done, 2u);
}

TEST(TrialScheduler, StopFlagPreventsNewClaimsAndReportsStopped) {
  const Graph g = gen::complete(64);
  const ProtocolSpec push_spec = default_spec(Protocol::push);
  std::vector<TrialSet> sets(1);
  std::vector<TrialBatch> batches(1);
  batches[0] = TrialBatch{.graph = &g,
                          .protocol = &push_spec,
                          .source = 0,
                          .trials = 40,
                          .master_seed = 31,
                          .out = &sets[0]};
  // Pre-set stop: nothing runs, nothing is emitted.
  {
    ThreadPool pool(2);
    std::atomic<bool> stop{true};
    bool emitted = false;
    TrialRunOptions options;
    options.pool = &pool;
    options.stop = &stop;
    options.on_batch_done = [&](std::size_t) { emitted = true; };
    const TrialRunOutcome outcome = run_trial_batches(batches, options);
    EXPECT_TRUE(outcome.stopped);
    EXPECT_EQ(outcome.trials_run, 0u);
    EXPECT_FALSE(emitted);
  }
  // Stop flipped mid-run (from the per-trial hook, like a signal handler
  // would): the run ends early but every recorded trial stays recorded.
  {
    ThreadPool pool(1);
    std::atomic<bool> stop{false};
    TrialRunOptions options;
    options.pool = &pool;
    options.stop = &stop;
    options.on_trial_done = [&](std::size_t, std::size_t) {
      stop.store(true);
    };
    const TrialRunOutcome outcome = run_trial_batches(batches, options);
    EXPECT_TRUE(outcome.stopped);
    EXPECT_GE(outcome.trials_run, 1u);
    EXPECT_LT(outcome.trials_run, 40u);
  }
  // run_scenarios surfaces the stop as a typed "interrupted" error — the
  // CLI's SIGINT path (exit 1 + "# truncated" CSV trailer) keys off it.
  {
    std::istringstream in("complete(n=64) push trials=8\n");
    std::string error;
    const auto specs = parse_scenario_stream(in, &error);
    ASSERT_TRUE(specs) << error;
    std::atomic<bool> stop{true};
    ScenarioRunOptions options;
    options.stop = &stop;
    const auto results = run_scenarios(*specs, &error, options);
    EXPECT_FALSE(results);
    EXPECT_NE(error.find("interrupted"), std::string::npos) << error;
  }
}

}  // namespace
}  // namespace rumor

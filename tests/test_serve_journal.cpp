// Serve journal robustness: append/replay round-trip, torn tails, CRC
// corruption, version/magic rejection, and checkpoint compaction. The
// resume contract rests on one property — replay keeps exactly the valid
// record prefix — so these tests attack every byte position.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "serve/journal.hpp"

namespace rumor::serve {
namespace {

namespace fs = std::filesystem;

class ServeJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rumor_serve_journal_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "serve.journal").string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string read_bytes() const {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  void write_bytes(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // A journal with two jobs, three trials on job 1, job 2 cancelled.
  void write_sample_journal() {
    Journal journal;
    JournalState state;
    std::string error;
    ASSERT_TRUE(journal.open(path_, &state, &error)) << error;
    JournalJob job1;
    job1.id = 1;
    job1.client = "alice";
    job1.lines = {"complete(n=64) push trials=4",
                  "cycle(n=32) push-pull trials=2"};
    journal.append_job(job1);
    JournalJob job2;
    job2.id = 2;
    job2.client = "bob";
    job2.lines = {"star(leaves=16) push source=1 trials=3"};
    journal.append_job(job2);
    for (std::uint32_t t = 0; t < 3; ++t) {
      TrialRecord rec;
      rec.scenario = t % 2;
      rec.trial = t;
      rec.rounds = 10.0 + t;
      rec.agent_rounds = 10.0 + t;
      rec.informed = 64.0;
      rec.completed = t != 2;
      journal.append_trial(1, rec);
    }
    journal.append_cancel(2);
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(ServeJournalTest, Crc32MatchesTheIeeeCheckVector) {
  // The canonical CRC-32 test vector: crc("123456789") = 0xCBF43926.
  EXPECT_EQ(crc32_ieee("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32_ieee("", 0), 0u);
}

TEST_F(ServeJournalTest, AppendThenReplayRoundTripsEveryField) {
  write_sample_journal();
  JournalState state;
  std::string error;
  ASSERT_TRUE(replay_journal_bytes(read_bytes(), &state, &error)) << error;
  EXPECT_TRUE(state.clean);
  EXPECT_EQ(state.next_job_id, 3u);
  ASSERT_EQ(state.jobs.size(), 2u);
  const JournalJob& job1 = state.jobs[0];
  EXPECT_EQ(job1.id, 1u);
  EXPECT_EQ(job1.client, "alice");
  ASSERT_EQ(job1.lines.size(), 2u);
  EXPECT_EQ(job1.lines[0], "complete(n=64) push trials=4");
  EXPECT_FALSE(job1.cancelled);
  ASSERT_EQ(job1.trials.size(), 3u);
  EXPECT_EQ(job1.trials[1].trial, 1u);
  EXPECT_DOUBLE_EQ(job1.trials[1].rounds, 11.0);
  EXPECT_TRUE(job1.trials[1].completed);
  EXPECT_FALSE(job1.trials[2].completed);
  const JournalJob& job2 = state.jobs[1];
  EXPECT_EQ(job2.client, "bob");
  EXPECT_TRUE(job2.cancelled);
}

TEST_F(ServeJournalTest, EveryTruncationPointKeepsAValidPrefix) {
  write_sample_journal();
  const std::string full = read_bytes();
  JournalState whole;
  std::string error;
  ASSERT_TRUE(replay_journal_bytes(full, &whole, &error));
  // Cut the journal at EVERY byte boundary (the SIGKILL can land
  // anywhere): replay must never fail once the header survives, and must
  // replay a prefix of the full state — never an invented record.
  for (std::size_t cut = 16; cut < full.size(); ++cut) {
    JournalState state;
    ASSERT_TRUE(replay_journal_bytes(full.substr(0, cut), &state, &error))
        << "cut at " << cut << ": " << error;
    if (cut < full.size()) {
      std::size_t trials = 0;
      for (const JournalJob& job : state.jobs) trials += job.trials.size();
      EXPECT_LE(state.jobs.size(), whole.jobs.size());
      EXPECT_LE(trials, 3u);
      // Whatever was replayed matches the full journal's prefix exactly.
      for (std::size_t j = 0; j < state.jobs.size(); ++j) {
        EXPECT_EQ(state.jobs[j].id, whole.jobs[j].id);
        EXPECT_EQ(state.jobs[j].lines, whole.jobs[j].lines);
      }
    }
  }
  // A cut strictly inside a record is reported unclean.
  JournalState torn;
  ASSERT_TRUE(
      replay_journal_bytes(full.substr(0, full.size() - 3), &torn, &error));
  EXPECT_FALSE(torn.clean);
  EXPECT_NE(torn.warning.find("replayed the valid prefix"),
            std::string::npos);
}

TEST_F(ServeJournalTest, CrcCorruptionStopsReplayAtTheBrokenRecord) {
  write_sample_journal();
  std::string bytes = read_bytes();
  // Flip one payload byte in the LAST record: everything before survives.
  bytes[bytes.size() - 6] ^= 0x40;
  JournalState state;
  std::string error;
  ASSERT_TRUE(replay_journal_bytes(bytes, &state, &error));
  EXPECT_FALSE(state.clean);
  EXPECT_NE(state.warning.find("CRC mismatch"), std::string::npos);
  ASSERT_EQ(state.jobs.size(), 2u);
  EXPECT_FALSE(state.jobs[1].cancelled);  // the cancel record was the victim
  EXPECT_EQ(state.jobs[0].trials.size(), 3u);
}

TEST_F(ServeJournalTest, VersionMismatchAndBadMagicAreRejected) {
  write_sample_journal();
  const std::string good = read_bytes();
  std::string wrong_version = good;
  wrong_version[8] = 99;  // u32 version little-endian low byte
  JournalState state;
  std::string error;
  EXPECT_FALSE(replay_journal_bytes(wrong_version, &state, &error));
  EXPECT_NE(error.find("version"), std::string::npos);

  std::string wrong_magic = good;
  wrong_magic[0] = 'X';
  EXPECT_FALSE(replay_journal_bytes(wrong_magic, &state, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);

  // Journal::open refuses them too (no silent re-initialization of a
  // foreign or future-version file).
  write_bytes(wrong_version);
  Journal journal;
  EXPECT_FALSE(journal.open(path_, &state, &error));
}

TEST_F(ServeJournalTest, OpenCompactsARecoveredJournalInPlace) {
  write_sample_journal();
  const std::string full = read_bytes();
  write_bytes(full.substr(0, full.size() - 5));  // tear the last record
  Journal journal;
  JournalState state;
  std::string error;
  ASSERT_TRUE(journal.open(path_, &state, &error)) << error;
  EXPECT_FALSE(state.clean);
  journal.close();
  // The on-disk file was rewritten to the valid prefix: replaying it now
  // is clean and equals the recovered state.
  JournalState after;
  ASSERT_TRUE(replay_journal_bytes(read_bytes(), &after, &error));
  EXPECT_TRUE(after.clean);
  EXPECT_EQ(after.jobs.size(), state.jobs.size());
  EXPECT_EQ(after.jobs[0].trials.size(), state.jobs[0].trials.size());
}

TEST_F(ServeJournalTest, CheckpointDropsCancelledJobsTrials) {
  write_sample_journal();
  Journal journal;
  JournalState state;
  std::string error;
  ASSERT_TRUE(journal.open(path_, &state, &error)) << error;
  // Give the cancelled job some trials, then compact.
  state.jobs[1].trials.push_back(TrialRecord{0, 0, 5.0, 5.0, 16.0, true});
  ASSERT_TRUE(journal.checkpoint(state, &error)) << error;
  journal.close();
  JournalState compacted;
  ASSERT_TRUE(replay_journal_bytes(read_bytes(), &compacted, &error));
  EXPECT_TRUE(compacted.clean);
  ASSERT_EQ(compacted.jobs.size(), 2u);
  EXPECT_EQ(compacted.jobs[0].trials.size(), 3u);  // live job keeps its
  EXPECT_TRUE(compacted.jobs[1].cancelled);
  EXPECT_TRUE(compacted.jobs[1].trials.empty());  // cancelled job's dropped
  EXPECT_EQ(compacted.next_job_id, 3u);
}

TEST_F(ServeJournalTest, AppendingAfterCheckpointKeepsTheJournalReadable) {
  write_sample_journal();
  Journal journal;
  JournalState state;
  std::string error;
  ASSERT_TRUE(journal.open(path_, &state, &error)) << error;
  ASSERT_TRUE(journal.checkpoint(state, &error)) << error;
  TrialRecord rec;
  rec.scenario = 0;
  rec.trial = 3;
  rec.rounds = 42.0;
  journal.append_trial(1, rec);
  journal.close();
  JournalState replayed;
  ASSERT_TRUE(replay_journal_bytes(read_bytes(), &replayed, &error));
  EXPECT_TRUE(replayed.clean);
  ASSERT_EQ(replayed.jobs[0].trials.size(), 4u);
  EXPECT_DOUBLE_EQ(replayed.jobs[0].trials[3].rounds, 42.0);
}

}  // namespace
}  // namespace rumor::serve

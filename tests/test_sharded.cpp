// Frontier-sharded round engine tests.
//
// The contract under test (core/sharding): within the sharded engine the
// trajectory depends only on the trial seed — never on the shard count,
// the worker count, or the storage backend — because every random
// decision draws from an addressable per-(phase, slot) Philox chain and
// every merge visits candidates in global slot order. shards=1 is the
// serial reference; 2/4/7-way runs must reproduce it byte for byte.
// Also covered: the allocation-free parallel_for_ranges primitive, the
// nested-fan-out flattening rule, zero steady-state allocations per
// trial, the two-axis trial schedule, and the scenario-level rejection of
// the incompatible option combinations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "alloc_probe.hpp"
#include "core/hybrid.hpp"
#include "core/meet_exchange.hpp"
#include "core/push.hpp"
#include "core/push_pull.hpp"
#include "core/sharding.hpp"
#include "core/visit_exchange.hpp"
#include "experiments/scenario.hpp"
#include "experiments/trials.hpp"
#include "graph/generators.hpp"
#include "graph/implicit.hpp"
#include "support/philox.hpp"
#include "support/thread_pool.hpp"
#include "support/trial_arena.hpp"

namespace rumor {
namespace {

// ---- parallel_for_ranges -----------------------------------------------

TEST(ThreadPoolRanges, ShardRangePartitionsExactly) {
  for (const std::size_t count : {0u, 1u, 5u, 64u, 1000u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 7u, 16u}) {
      std::size_t expect_begin = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [begin, end] = ThreadPool::shard_range(count, shards, s);
        EXPECT_EQ(begin, expect_begin) << count << "/" << shards << "#" << s;
        EXPECT_GE(end, begin);
        // Balanced: range sizes differ by at most one.
        EXPECT_LE(end - begin, count / shards + 1);
        expect_begin = end;
      }
      EXPECT_EQ(expect_begin, count);
    }
  }
}

TEST(ThreadPoolRanges, CoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for_ranges(1000, 4, [&](std::size_t /*shard*/,
                                        std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolRanges, ClampsShardsAndHandlesEmpty) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for_ranges(0, 4, [&](std::size_t, std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
  // More shards than items: clamped to one shard per item.
  std::vector<std::atomic<int>> hits(3);
  std::atomic<int> shards_seen{0};
  pool.parallel_for_ranges(
      3, 16, [&](std::size_t, std::size_t begin, std::size_t end) {
        shards_seen.fetch_add(1);
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
  EXPECT_EQ(shards_seen.load(), 3);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolRanges, NestedFanOutFlattensInline) {
  // A worker of the pool issuing parallel_for_ranges against the SAME pool
  // must not deadlock or re-enter the queue: the call runs inline.
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(6, [&](std::size_t) {
    pool.parallel_for_ranges(
        100, 4, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) sum.fetch_add(i);
        });
  });
  EXPECT_EQ(sum.load(), 6u * (100u * 99u / 2));
}

TEST(ThreadPoolRanges, NestedParallelForFlattensInline) {
  ThreadPool pool(3);
  std::atomic<std::size_t> count{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(25, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPoolRanges, ReusableAndConcurrentWithTasks) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for_ranges(
        257, 4, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) sum.fetch_add(i);
        });
    ASSERT_EQ(sum.load(), 257u * 256u / 2);
  }
}

// ---- SlotDraws addressability ------------------------------------------

TEST(ShardDraws, SlotChainsAreAddressableAndDisjoint) {
  const ShardPlane plane(/*trial_seed=*/42, /*round=*/7);
  // Re-opening the same (phase, slot) replays the identical chain — the
  // property that makes the trajectory independent of the partition.
  SlotDraws a(plane, kShardPhasePush, 3);
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 9; ++i) first.push_back(a.next_u32());
  SlotDraws b(plane, kShardPhasePush, 3);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(b.next_u32(), first[i]);
  // Different slot or phase: a different chain.
  SlotDraws c(plane, kShardPhasePush, 4);
  SlotDraws d(plane, kShardPhasePull, 3);
  EXPECT_NE(c.next_u32(), first[0]);
  EXPECT_NE(d.next_u32(), first[0]);
  // Different round: a different plane entirely.
  const ShardPlane plane2(42, 8);
  SlotDraws e(plane2, kShardPhasePush, 3);
  EXPECT_NE(e.next_u32(), first[0]);
}

TEST(ShardDraws, UnitDoublesAreInRange) {
  const ShardPlane plane(1, 1);
  SlotDraws draws(plane, kShardPhaseWalk, 0);
  for (int i = 0; i < 100; ++i) {
    const double u = draws.next_unit_double();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// ---- Spec grammar ------------------------------------------------------

TEST(ShardSpec, RoundTripsAndRejects) {
  for (const char* text :
       {"push(shards=auto)", "push(shards=4)", "push-pull(shards=2)",
        "visit-exchange(shards=7)", "meet-exchange(shards=2)",
        "hybrid(shards=auto)"}) {
    std::string error;
    const auto spec = ProtocolSpec::parse(text, &error);
    ASSERT_TRUE(spec) << text << ": " << error;
    EXPECT_EQ(spec->name(), text);
    EXPECT_NE(spec->shards(), 0u);
  }
  // 0 is not a spelling (absent is the only legacy form); the walk-shared
  // protocols that do not implement the engine reject the key outright.
  EXPECT_FALSE(ProtocolSpec::parse("push(shards=0)"));
  EXPECT_FALSE(ProtocolSpec::parse("push(shards=-1)"));
  EXPECT_FALSE(ProtocolSpec::parse("frog(shards=2)"));
  EXPECT_FALSE(ProtocolSpec::parse("dynamic-agent(shards=2)"));
  // Default specs stay bare: no shards= key leaks into canonical text.
  EXPECT_EQ(ProtocolSpec::parse("push")->name(), "push");
  EXPECT_EQ(ProtocolSpec::parse("push")->shards(), 0u);
}

TEST(ShardSpec, EnginePolicyIsPureInItsInputs) {
  EXPECT_FALSE(sharding_enabled(0, 1));
  EXPECT_FALSE(sharding_enabled(0, std::uint64_t{1} << 40));
  EXPECT_TRUE(sharding_enabled(1, 1));
  EXPECT_TRUE(sharding_enabled(7, 16));
  EXPECT_FALSE(sharding_enabled(kShardsAuto, kShardAutoThreshold - 1));
  EXPECT_TRUE(sharding_enabled(kShardsAuto, kShardAutoThreshold));
}

TEST(ShardSpec, ScenarioValidationRejectsIncompatibleCombos) {
  const auto reject = [](const char* line, const char* needle) {
    std::string error;
    const auto spec = ScenarioSpec::parse(line, &error);
    ASSERT_TRUE(spec) << line << ": " << error;
    EXPECT_FALSE(validate_scenarios({*spec}, &error)) << line;
    EXPECT_NE(error.find(needle), std::string::npos) << line << ": " << error;
  };
  reject("cycle(n=64) push(shards=2,edge_traffic=on)", "edge_traffic");
  reject("cycle(n=64) push-pull(shards=2,edge_traffic=on)", "edge_traffic");
  reject("cycle(n=64) visit-exchange(shards=2,edge_traffic=on)",
         "edge_traffic");
  reject("cycle(n=64) meet-exchange(shards=2,edge_traffic=on)",
         "edge_traffic");
  reject("cycle(n=64) visit-exchange(shards=2,engine=counter)", "engine");
  reject("cycle(n=64) meet-exchange(shards=2,engine=counter)", "engine");
  reject("cycle(n=64) hybrid(shards=2,engine=counter)", "engine");
  // The compatible forms pass the same validator.
  std::string error;
  const auto ok = ScenarioSpec::parse(
      "cycle(n=64) push(shards=2,curve=on,inform_rounds=on)", &error);
  ASSERT_TRUE(ok) << error;
  EXPECT_TRUE(validate_scenarios({*ok}, &error)) << error;
}

// ---- Sharded-vs-serial trajectories ------------------------------------

// Full-trajectory equality: broadcast time, final count, per-round curve,
// and the per-vertex inform rounds (per-agent too where present) — the
// strongest observable trajectory the simulators expose.
void expect_same_result(const RunResult& a, const RunResult& b,
                        const std::string& what) {
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.completed, b.completed) << what;
  EXPECT_EQ(a.agent_rounds, b.agent_rounds) << what;
  EXPECT_EQ(a.informed, b.informed) << what;
  EXPECT_EQ(a.informed_curve, b.informed_curve) << what;
  EXPECT_EQ(a.vertex_inform_round, b.vertex_inform_round) << what;
  EXPECT_EQ(a.agent_inform_round, b.agent_inform_round) << what;
}

constexpr std::uint32_t kShardCounts[] = {2, 4, 7};

RunResult run_push_shards(const Graph& g, std::uint64_t seed,
                          std::uint32_t shards, float tp, double loss) {
  PushOptions opt;
  opt.shards = shards;
  opt.transmission.tp = tp;
  opt.loss_probability = loss;
  opt.trace.informed_curve = true;
  opt.trace.inform_rounds = true;
  return run_push(g, 0, seed, opt);
}

TEST(ShardedPush, TrajectoryIndependentOfShardCount) {
  const Graph graphs[] = {gen::cycle(96), gen::complete(48),
                          gen::heavy_binary_tree(63)};
  for (const Graph& g : graphs) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const RunResult ref = run_push_shards(g, seed, 1, 1.0f, 0.0);
      ASSERT_TRUE(ref.completed);
      for (const std::uint32_t shards : kShardCounts) {
        expect_same_result(ref, run_push_shards(g, seed, shards, 1.0f, 0.0),
                           "push shards=" + std::to_string(shards));
      }
    }
  }
}

TEST(ShardedPush, HeterogeneousAndLossyTrajectoriesMatch) {
  const Graph g = gen::circulant(128, 6);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const RunResult ref = run_push_shards(g, seed, 1, 0.7f, 0.2);
    for (const std::uint32_t shards : kShardCounts) {
      expect_same_result(ref, run_push_shards(g, seed, shards, 0.7f, 0.2),
                         "lossy push shards=" + std::to_string(shards));
    }
  }
}

TEST(ShardedPush, ImplicitAndOwnedBackendsAgree) {
  // Same structure, different storage: the sharded engine must not care.
  const auto spec_imp = GraphSpec::parse("star(leaves=512)");
  const auto spec_own = GraphSpec::parse("star(leaves=512,backend=owned)");
  ASSERT_TRUE(spec_imp && spec_own);
  Rng rng(1);
  const Graph imp = spec_imp->make(rng);
  const Graph own = spec_own->make(rng);
  ASSERT_TRUE(imp.is_implicit());
  ASSERT_FALSE(own.is_implicit());
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const RunResult ref = run_push_shards(imp, seed, 1, 1.0f, 0.0);
    for (const std::uint32_t shards : kShardCounts) {
      expect_same_result(ref, run_push_shards(own, seed, shards, 1.0f, 0.0),
                         "backend shards=" + std::to_string(shards));
    }
  }
}

TEST(ShardedPush, HubBumpPathMatchesAtHugeDegree) {
  // A star hub at deg >= 1<<16 takes the parallel informed-neighbor bump
  // inside inform(); the counters it feeds must come out identical to the
  // serial bump. Bounded rounds keep the Theta(n log n) star run cheap.
  const auto spec = GraphSpec::parse("star(leaves=65536)");
  ASSERT_TRUE(spec);
  Rng rng(1);
  const Graph g = spec->make(rng);
  PushOptions opt;
  opt.shards = 1;
  opt.max_rounds = 6;
  opt.trace.informed_curve = true;
  opt.trace.inform_rounds = true;
  const RunResult ref = run_push(g, 0, 11, opt);
  EXPECT_FALSE(ref.completed);
  for (const std::uint32_t shards : kShardCounts) {
    opt.shards = shards;
    expect_same_result(ref, run_push(g, 0, 11, opt),
                       "hub bump shards=" + std::to_string(shards));
  }
}

RunResult run_push_pull_shards(const Graph& g, std::uint64_t seed,
                               std::uint32_t shards, float tp, double loss) {
  PushPullOptions opt;
  opt.shards = shards;
  opt.transmission.tp = tp;
  opt.loss_probability = loss;
  opt.trace.informed_curve = true;
  opt.trace.inform_rounds = true;
  return run_push_pull(g, 0, seed, opt);
}

TEST(ShardedPushPull, TrajectoryIndependentOfShardCount) {
  const Graph graphs[] = {gen::cycle(96), gen::star(64),
                          gen::heavy_binary_tree(63)};
  for (const Graph& g : graphs) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const RunResult ref = run_push_pull_shards(g, seed, 1, 1.0f, 0.0);
      ASSERT_TRUE(ref.completed);
      for (const std::uint32_t shards : kShardCounts) {
        expect_same_result(
            ref, run_push_pull_shards(g, seed, shards, 1.0f, 0.0),
            "push-pull shards=" + std::to_string(shards));
      }
    }
  }
}

TEST(ShardedPushPull, HeterogeneousAndLossyTrajectoriesMatch) {
  const Graph g = gen::circulant(128, 6);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const RunResult ref = run_push_pull_shards(g, seed, 1, 0.6f, 0.15);
    for (const std::uint32_t shards : kShardCounts) {
      expect_same_result(
          ref, run_push_pull_shards(g, seed, shards, 0.6f, 0.15),
          "lossy push-pull shards=" + std::to_string(shards));
    }
  }
}

RunResult run_visitx_shards(const Graph& g, std::uint64_t seed,
                            std::uint32_t shards, float tp) {
  WalkOptions opt;
  opt.shards = shards;
  opt.transmission.tp = tp;
  opt.trace.informed_curve = true;
  opt.trace.inform_rounds = true;
  return run_visit_exchange(g, 0, seed, opt);
}

TEST(ShardedVisitExchange, TrajectoryIndependentOfShardCount) {
  const Graph graphs[] = {gen::cycle(64), gen::complete(48),
                          gen::grid2d(8, 8)};
  for (const Graph& g : graphs) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const RunResult ref = run_visitx_shards(g, seed, 1, 1.0f);
      ASSERT_TRUE(ref.completed);
      for (const std::uint32_t shards : kShardCounts) {
        expect_same_result(ref, run_visitx_shards(g, seed, shards, 1.0f),
                           "visitx shards=" + std::to_string(shards));
      }
    }
  }
}

TEST(ShardedVisitExchange, HeterogeneousTrajectoriesMatch) {
  const Graph g = gen::circulant(96, 4);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const RunResult ref = run_visitx_shards(g, seed, 1, 0.7f);
    for (const std::uint32_t shards : kShardCounts) {
      expect_same_result(ref, run_visitx_shards(g, seed, shards, 0.7f),
                         "het visitx shards=" + std::to_string(shards));
    }
  }
}

TEST(ShardedVisitExchange, ImplicitAndOwnedBackendsAgree) {
  const auto spec_imp = GraphSpec::parse("torus(rows=8,cols=8)");
  const auto spec_own = GraphSpec::parse("torus(rows=8,cols=8,backend=owned)");
  ASSERT_TRUE(spec_imp && spec_own);
  Rng rng(1);
  const Graph imp = spec_imp->make(rng);
  const Graph own = spec_own->make(rng);
  ASSERT_TRUE(imp.is_implicit());
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const RunResult ref = run_visitx_shards(imp, seed, 1, 1.0f);
    for (const std::uint32_t shards : kShardCounts) {
      expect_same_result(ref, run_visitx_shards(own, seed, shards, 1.0f),
                         "backend visitx shards=" + std::to_string(shards));
    }
  }
}

RunResult run_meetx_shards(const Graph& g, std::uint64_t seed,
                           std::uint32_t shards, float tp) {
  WalkOptions opt = MeetExchangeProcess::default_options();
  opt.shards = shards;
  opt.transmission.tp = tp;
  opt.trace.informed_curve = true;
  opt.trace.inform_rounds = true;
  return run_meet_exchange(g, 0, seed, opt);
}

TEST(ShardedMeetExchange, TrajectoryIndependentOfShardCount) {
  // cycle is bipartite: the default auto_bipartite laziness must resolve
  // identically through the sharded walk kernel.
  const Graph graphs[] = {gen::cycle(48), gen::complete(32),
                          gen::grid2d(6, 6)};
  for (const Graph& g : graphs) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const RunResult ref = run_meetx_shards(g, seed, 1, 1.0f);
      ASSERT_TRUE(ref.completed);
      for (const std::uint32_t shards : kShardCounts) {
        expect_same_result(ref, run_meetx_shards(g, seed, shards, 1.0f),
                           "meetx shards=" + std::to_string(shards));
      }
    }
  }
}

TEST(ShardedMeetExchange, HeterogeneousTrajectoriesMatch) {
  const Graph g = gen::circulant(96, 4);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const RunResult ref = run_meetx_shards(g, seed, 1, 0.7f);
    for (const std::uint32_t shards : kShardCounts) {
      expect_same_result(ref, run_meetx_shards(g, seed, shards, 0.7f),
                         "het meetx shards=" + std::to_string(shards));
    }
  }
}

TEST(ShardedMeetExchange, ImplicitAndOwnedBackendsAgree) {
  const auto spec_imp = GraphSpec::parse("torus(rows=6,cols=6)");
  const auto spec_own = GraphSpec::parse("torus(rows=6,cols=6,backend=owned)");
  ASSERT_TRUE(spec_imp && spec_own);
  Rng rng(1);
  const Graph imp = spec_imp->make(rng);
  const Graph own = spec_own->make(rng);
  ASSERT_TRUE(imp.is_implicit());
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const RunResult ref = run_meetx_shards(imp, seed, 1, 1.0f);
    for (const std::uint32_t shards : kShardCounts) {
      expect_same_result(ref, run_meetx_shards(own, seed, shards, 1.0f),
                         "backend meetx shards=" + std::to_string(shards));
    }
  }
}

RunResult run_hybrid_shards(const Graph& g, std::uint64_t seed,
                            std::uint32_t shards, float tp) {
  WalkOptions opt;
  opt.shards = shards;
  opt.transmission.tp = tp;
  opt.trace.informed_curve = true;
  opt.trace.inform_rounds = true;
  return run_hybrid(g, 0, seed, opt);
}

TEST(ShardedHybrid, TrajectoryIndependentOfShardCount) {
  // The dual phase exercises every draw phase at once: agent informs,
  // push, pull, and agent catches in one round.
  const Graph graphs[] = {gen::cycle(96), gen::star(64),
                          gen::heavy_binary_tree(63)};
  for (const Graph& g : graphs) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const RunResult ref = run_hybrid_shards(g, seed, 1, 1.0f);
      ASSERT_TRUE(ref.completed);
      for (const std::uint32_t shards : kShardCounts) {
        expect_same_result(ref, run_hybrid_shards(g, seed, shards, 1.0f),
                           "hybrid shards=" + std::to_string(shards));
      }
    }
  }
}

TEST(ShardedHybrid, HeterogeneousTrajectoriesMatch) {
  const Graph g = gen::circulant(96, 4);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const RunResult ref = run_hybrid_shards(g, seed, 1, 0.6f);
    for (const std::uint32_t shards : kShardCounts) {
      expect_same_result(ref, run_hybrid_shards(g, seed, shards, 0.6f),
                         "het hybrid shards=" + std::to_string(shards));
    }
  }
}

TEST(ShardedHybrid, ImplicitAndOwnedBackendsAgree) {
  const auto spec_imp = GraphSpec::parse("torus(rows=8,cols=8)");
  const auto spec_own = GraphSpec::parse("torus(rows=8,cols=8,backend=owned)");
  ASSERT_TRUE(spec_imp && spec_own);
  Rng rng(1);
  const Graph imp = spec_imp->make(rng);
  const Graph own = spec_own->make(rng);
  ASSERT_TRUE(imp.is_implicit());
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const RunResult ref = run_hybrid_shards(imp, seed, 1, 1.0f);
    for (const std::uint32_t shards : kShardCounts) {
      expect_same_result(ref, run_hybrid_shards(own, seed, shards, 1.0f),
                         "backend hybrid shards=" + std::to_string(shards));
    }
  }
}

// ---- Sharded owned-CSR build -------------------------------------------

TEST(ShardedCsrBuild, ContentIdenticalAcrossWidths) {
  // A scrambled-order edge list (strided permutation of a two-offset
  // circulant) so the parallel chunk-sort and merge actually reorder, plus
  // an irregular star overlay so degrees differ per row.
  const Vertex n = 700;
  std::vector<std::pair<Vertex, Vertex>> edges;
  for (Vertex v = 0; v < n; ++v) {
    edges.emplace_back(v, (v + 1) % n);
    edges.emplace_back(v, (v + 5) % n);
  }
  for (Vertex v = 10; v < 200; v += 7) edges.emplace_back(3, v);
  std::vector<std::pair<Vertex, Vertex>> scrambled(edges.size());
  for (std::size_t k = 0; k < edges.size(); ++k) {
    scrambled[k] = edges[(k * 911) % edges.size()];  // 911 coprime to size
  }

  ThreadPool pool(3);
  ThreadPool* prev = set_shard_pool(&pool);
  const Graph ref = Graph::build_owned(n, scrambled, 1);
  for (const std::uint32_t shards : {2u, 4u, 7u}) {
    const Graph g = Graph::build_owned(n, scrambled, shards);
    ASSERT_EQ(g.num_vertices(), ref.num_vertices());
    ASSERT_EQ(g.num_edges(), ref.num_edges());
    const CsrView a = ref.csr();
    const CsrView b = g.csr();
    for (Vertex v = 0; v <= n; ++v) EXPECT_EQ(a.offsets[v], b.offsets[v]);
    for (std::size_t i = 0; i < 2 * ref.num_edges(); ++i) {
      ASSERT_EQ(a.neighbors[i], b.neighbors[i]) << "slot " << i;
      ASSERT_EQ(a.edge_ids[i], b.edge_ids[i]) << "slot " << i;
    }
    for (EdgeId e = 0; e < ref.num_edges(); ++e) {
      EXPECT_EQ(g.edge_endpoints(e), ref.edge_endpoints(e));
    }
    EXPECT_EQ(g.min_degree(), ref.min_degree());
    EXPECT_EQ(g.max_degree(), ref.max_degree());
    EXPECT_EQ(g.degrees_all_pow2(), ref.degrees_all_pow2());
  }
  // The sharded-built graph is a drop-in substrate: same trajectory as the
  // serially built one under the sharded round engine.
  const Graph wide = Graph::build_owned(n, scrambled, 4);
  expect_same_result(run_push_shards(ref, 5, 2, 1.0f, 0.0),
                     run_push_shards(wide, 5, 2, 1.0f, 0.0), "csr substrate");
  set_shard_pool(prev);
}

TEST(ShardedCsrBuild, PropertiesAndValidationMatchSerial) {
  // Degenerate shapes through the parallel path: single edge, path, and a
  // width far above the edge count (ranges clamp empty).
  ThreadPool pool(2);
  ThreadPool* prev = set_shard_pool(&pool);
  const std::vector<std::pair<Vertex, Vertex>> one = {{1, 0}};
  const Graph g1 = Graph::build_owned(2, one, 8);
  EXPECT_EQ(g1.num_edges(), 1u);
  EXPECT_EQ(g1.degree(0), 1u);
  EXPECT_TRUE(g1.has_edge(0, 1));
  std::vector<std::pair<Vertex, Vertex>> path;
  for (Vertex v = 0; v + 1 < 9; ++v) path.emplace_back(v + 1, v);
  const Graph gp = Graph::build_owned(9, path, 4);
  const Graph gs = Graph::build_owned(9, path, 1);
  EXPECT_EQ(gp.properties().connected, gs.properties().connected);
  EXPECT_EQ(gp.properties().bipartite, gs.properties().bipartite);
  set_shard_pool(prev);
}

// ---- Zero steady-state allocations -------------------------------------

TEST(ShardedAlloc, SteadyStateTrialsAllocateNothing) {
  const Graph g = gen::circulant(256, 8);
  TrialArena arena;
  for (const char* text :
       {"push(shards=2)", "push-pull(shards=2)", "visit-exchange(shards=2)",
        "meet-exchange(shards=2)", "hybrid(shards=2)",
        "push(shards=4,tp=0.8)", "push-pull(shards=4,loss=0.1)",
        "meet-exchange(shards=4,tp=0.8)", "hybrid(shards=4,tp=0.8)"}) {
    const auto spec = ProtocolSpec::parse(text);
    ASSERT_TRUE(spec) << text;
    // Warm-up: scratch segments grow to their high-water mark.
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      (void)run_protocol(g, *spec, 0, derive_seed(4242, seed), &arena);
    }
    test_alloc::g_allocations.store(0);
    test_alloc::g_count.store(true);
    double acc = 0.0;
    for (std::uint64_t seed = 8; seed < 24; ++seed) {
      acc += run_protocol(g, *spec, 0, derive_seed(4242, seed), &arena)
                 .rounds;
    }
    test_alloc::g_count.store(false);
    EXPECT_EQ(test_alloc::g_allocations.load(), 0u)
        << text << " (rounds acc " << acc << ")";
  }
}

// ---- Two-axis trial schedule -------------------------------------------

TrialSet run_batch_on_pool(const Graph& g, const ProtocolSpec& spec,
                           std::size_t trials, ThreadPool* pool) {
  TrialSet set;
  TrialBatch batch;
  batch.graph = &g;
  batch.protocol = &spec;
  batch.source = 0;
  batch.trials = trials;
  batch.master_seed = 99;
  batch.out = &set;
  TrialRunOptions options;
  options.pool = pool;
  const TrialRunOutcome outcome = run_trial_batches({batch}, options);
  EXPECT_EQ(outcome.trials_run, trials);
  return set;
}

TEST(TwoAxisSchedule, WideAndNarrowProduceIdenticalSamples) {
  // 2 trials on a 4-worker pool: too few to fill it, so the sharded batch
  // runs WIDE (caller thread + range fan-out). On a 1-worker pool the same
  // batch drains narrow. Samples must be bit-identical either way, and
  // identical to the plain run_trials path on the global pool.
  const Graph g = gen::circulant(192, 6);
  const auto spec = ProtocolSpec::parse("push(shards=2)");
  ASSERT_TRUE(spec);
  ThreadPool wide_pool(4);
  ThreadPool narrow_pool(1);
  const TrialSet wide = run_batch_on_pool(g, *spec, 2, &wide_pool);
  const TrialSet narrow = run_batch_on_pool(g, *spec, 2, &narrow_pool);
  EXPECT_EQ(wide.rounds, narrow.rounds);
  EXPECT_EQ(wide.informed, narrow.informed);
  EXPECT_EQ(wide.incomplete, narrow.incomplete);
  const TrialSet global = run_trials(g, *spec, 0, 2, 99);
  EXPECT_EQ(wide.rounds, global.rounds);
}

TEST(TwoAxisSchedule, ManyTrialsStillDrainNarrow) {
  // With enough queued trials to fill the pool, sharded batches drain
  // through the classic one-trial-one-worker path (nested fan-out
  // flattens inline on each worker) — and still match the wide samples.
  const Graph g = gen::cycle(128);
  const auto spec = ProtocolSpec::parse("push-pull(shards=3)");
  ASSERT_TRUE(spec);
  ThreadPool small_pool(2);
  ThreadPool big_pool(8);
  const TrialSet narrow = run_batch_on_pool(g, *spec, 6, &small_pool);
  const TrialSet wide = run_batch_on_pool(g, *spec, 6, &big_pool);
  EXPECT_EQ(narrow.rounds, wide.rounds);
  EXPECT_EQ(narrow.informed, wide.informed);
}

TEST(TwoAxisSchedule, MixedShardedAndSerialBatchesEmitInOrder) {
  const Graph g = gen::cycle(64);
  const auto sharded = ProtocolSpec::parse("push(shards=2)");
  const auto serial = ProtocolSpec::parse("push");
  ASSERT_TRUE(sharded && serial);
  TrialSet set_a;
  TrialSet set_b;
  TrialBatch a;
  a.graph = &g;
  a.protocol = &*sharded;
  a.trials = 1;
  a.master_seed = 5;
  a.out = &set_a;
  TrialBatch b = a;
  b.protocol = &*serial;
  b.out = &set_b;
  ThreadPool pool(4);
  std::vector<std::size_t> emitted;
  std::mutex emitted_mutex;
  TrialRunOptions options;
  options.pool = &pool;
  options.on_batch_done = [&](std::size_t i) {
    std::lock_guard lock(emitted_mutex);
    emitted.push_back(i);
  };
  const TrialRunOutcome outcome = run_trial_batches({a, b}, options);
  EXPECT_EQ(outcome.trials_run, 2u);
  EXPECT_EQ(emitted, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(set_a.rounds.size(), 1u);
  EXPECT_EQ(set_b.rounds.size(), 1u);
  // The serial batch's sample is untouched by the sharded engine riding
  // alongside it in the same queue.
  const TrialSet alone = run_trials(g, *serial, 0, 1, 5);
  EXPECT_EQ(set_b.rounds, alone.rounds);
}

}  // namespace
}  // namespace rumor

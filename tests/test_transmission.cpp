// Transmission-model layer tests: the tp=1/no-intervention fast path
// reproduces the pre-transmission trial samples byte-identically for every
// registered simulator (pinned golden samples), the grammar keys round-trip
// and reject what the simulators cannot honor, heterogeneous probabilities
// and interventions behave as specified, the longest-first scheduler order
// changes wall-clock only, and a throwing trial surfaces as a named
// scenario failure instead of a bare abort.
#include <gtest/gtest.h>

#include <mutex>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/registry.hpp"
#include "core/transmission.hpp"
#include "experiments/scenario.hpp"
#include "graph/generators.hpp"
#include "support/spec_text.hpp"
#include "support/thread_pool.hpp"
#include "support/trial_arena.hpp"

namespace rumor {
namespace {

// ---- tp=1 equivalence vs. seed-state results (acceptance criterion) ----
//
// Captured from the pre-transmission build (PR 4 head) on circulant(48, 2),
// source 0, 6 trials, master seed 20260730: run_trials samples for every
// registered simulator's default spec. The default transmission model is
// trivial, so the refactored contact sites must reproduce these exactly —
// any extra RNG draw or reordered branch shows up as a changed sample.

struct GoldenSamples {
  const char* name;
  std::vector<double> rounds;
  std::vector<double> agent_rounds;
};

const std::vector<GoldenSamples>& golden_samples() {
  static const std::vector<GoldenSamples> golden = {
      {"push", {30, 28, 27, 29, 29, 24}, {30, 28, 27, 29, 29, 24}},
      {"push-pull", {17, 18, 19, 19, 20, 23}, {17, 18, 19, 19, 20, 23}},
      {"visit-exchange",
       {30, 31, 31, 34, 26, 34},
       {27, 29, 30, 26, 22, 26}},
      {"meet-exchange", {32, 36, 30, 26, 35, 36}, {32, 36, 30, 26, 35, 36}},
      {"hybrid", {15, 17, 19, 15, 16, 17}, {15, 17, 19, 15, 16, 17}},
      {"frog", {32, 27, 20, 23, 25, 19}, {32, 27, 20, 23, 25, 19}},
      {"dynamic-agent", {30, 31, 31, 34, 26, 34}, {30, 31, 31, 34, 26, 34}},
      {"multi-push-pull", {18, 19, 21, 21, 19, 19}, {0, 0, 0, 0, 0, 0}},
      {"multi-visit-exchange",
       {30, 31, 31, 34, 26, 34},
       {0, 0, 0, 0, 0, 0}},
      {"async",
       {12.75, 13.3125, 15.104166666666666, 10.125, 12.166666666666666,
        18.770833333333332},
       {0, 0, 0, 0, 0, 0}},
  };
  return golden;
}

TEST(TransmissionEquivalence, DefaultSpecsReproduceSeedStateSamples) {
  const Graph g = gen::circulant(48, 2);
  for (const GoldenSamples& golden : golden_samples()) {
    const SimulatorEntry* entry =
        SimulatorRegistry::instance().find(golden.name);
    ASSERT_NE(entry, nullptr) << golden.name;
    const TrialSet set =
        run_trials(g, default_spec(entry->id), 0, 6, 20260730ULL);
    EXPECT_EQ(set.rounds, golden.rounds) << golden.name;
    EXPECT_EQ(set.agent_rounds, golden.agent_rounds) << golden.name;
    EXPECT_EQ(set.incomplete, 0u) << golden.name;
  }
}

TEST(TransmissionEquivalence, ExplicitTpOneIsTheTrivialModel) {
  // `tp=1` parses, round-trips away (it IS the default), and produces the
  // same samples — the grammar cannot accidentally fork the fast path.
  const Graph g = gen::circulant(48, 2);
  for (const GoldenSamples& golden : golden_samples()) {
    const std::string text = std::string(golden.name) + "(tp=1)";
    const auto spec = ProtocolSpec::parse(text);
    ASSERT_TRUE(spec) << text;
    EXPECT_EQ(spec->name(), golden.name);  // default emits no keys
    const TrialSet set = run_trials(g, *spec, 0, 6, 20260730ULL);
    EXPECT_EQ(set.rounds, golden.rounds) << text;
  }
}

// ---- Heterogeneous golden samples -------------------------------------
//
// Captured from the counter-RNG build (this PR's head): the skip-sampling
// and batched-draw paths pull their randomness from per-trial Philox
// streams, so these samples are a cross-platform contract — any change to
// the stream addressing, the gap computation (fast_log2f), or the draw
// order re-pins them. Two regimes are covered: a constant sub-one field on
// the regular circulant (the geometric skip path) and a degree-scaled
// field on the skewed tree (the batched per-vertex path).

const std::vector<GoldenSamples>& het_skip_golden_samples() {
  // circulant(48, 2): degree 4 everywhere, so tp=0.5 is a constant field
  // and every simulator takes the skip-sampling mode where it applies.
  static const std::vector<GoldenSamples> golden = {
      {"push(tp=0.5)", {60, 55, 40, 52, 59, 60}, {60, 55, 40, 52, 59, 60}},
      {"push-pull(tp=0.5)",
       {29, 28, 35, 27, 29, 37},
       {29, 28, 35, 27, 29, 37}},
      {"visit-exchange(tp=0.5)",
       {34, 39, 35, 39, 43, 44},
       {31, 37, 35, 36, 43, 43}},
      {"meet-exchange(tp=0.5)",
       {42, 48, 54, 38, 38, 45},
       {42, 48, 54, 38, 38, 45}},
      {"hybrid(tp=0.5)", {20, 20, 28, 21, 23, 21}, {20, 20, 28, 21, 23, 21}},
      {"frog(tp=0.5)", {36, 37, 36, 28, 28, 38}, {36, 37, 36, 28, 28, 38}},
      {"dynamic-agent(tp=0.5)",
       {39, 41, 46, 40, 43, 43},
       {39, 41, 46, 40, 43, 43}},
      {"multi-push-pull(tp=0.5)",
       {30, 30, 37, 29, 34, 38},
       {0, 0, 0, 0, 0, 0}},
      {"multi-visit-exchange(tp=0.5)",
       {40, 41, 36, 39, 46, 45},
       {0, 0, 0, 0, 0, 0}},
      {"async(tp=0.5)",
       {21.1875, 29.479166666666668, 26.020833333333332, 22.666666666666668,
        22.958333333333332, 33.083333333333336},
       {0, 0, 0, 0, 0, 0}},
  };
  return golden;
}

const std::vector<GoldenSamples>& het_batched_golden_samples() {
  // heavy_binary_tree(31): mixed degrees, so tp=deg^-0.5 is a genuinely
  // non-constant field and the contact sites draw per-entry.
  static const std::vector<GoldenSamples> golden = {
      {"push(tp=deg^-0.5)", {25, 40, 27, 23, 22, 37}, {25, 40, 27, 23, 22, 37}},
      {"push-pull(tp=deg^-0.5)",
       {16, 15, 18, 14, 13, 17},
       {16, 15, 18, 14, 13, 17}},
      {"visit-exchange(tp=deg^-0.5)",
       {59, 37, 34, 29, 72, 40},
       {49, 36, 30, 29, 67, 37}},
      {"meet-exchange(tp=deg^-0.5)",
       {64, 47, 34, 42, 73, 46},
       {64, 47, 34, 42, 73, 46}},
      {"hybrid(tp=deg^-0.5)",
       {11, 13, 11, 12, 19, 14},
       {11, 13, 11, 12, 19, 14}},
      {"frog(tp=deg^-0.5)",
       {35, 27, 31, 19, 22, 71},
       {35, 27, 31, 19, 22, 71}},
      {"dynamic-agent(tp=deg^-0.5)",
       {61, 42, 47, 51, 73, 35},
       {61, 42, 47, 51, 73, 35}},
      {"multi-push-pull(tp=deg^-0.5)",
       {16, 13, 18, 16, 18, 16},
       {0, 0, 0, 0, 0, 0}},
      {"multi-visit-exchange(tp=deg^-0.5)",
       {51, 45, 39, 51, 59, 44},
       {0, 0, 0, 0, 0, 0}},
      {"async(tp=deg^-0.5)",
       {11.806451612903226, 10.193548387096774, 19.64516129032258,
        9.741935483870968, 14.96774193548387, 19.483870967741936},
       {0, 0, 0, 0, 0, 0}},
  };
  return golden;
}

TEST(TransmissionEquivalence, HeterogeneousSkipPathReproducesGoldenSamples) {
  const Graph g = gen::circulant(48, 2);
  for (const GoldenSamples& golden : het_skip_golden_samples()) {
    const auto spec = ProtocolSpec::parse(golden.name);
    ASSERT_TRUE(spec) << golden.name;
    const TrialSet set = run_trials(g, *spec, 0, 6, 20260730ULL);
    EXPECT_EQ(set.rounds, golden.rounds) << golden.name;
    EXPECT_EQ(set.agent_rounds, golden.agent_rounds) << golden.name;
    EXPECT_EQ(set.incomplete, 0u) << golden.name;
  }
}

TEST(TransmissionEquivalence, HeterogeneousBatchedPathReproducesGoldenSamples) {
  const Graph g = gen::heavy_binary_tree(31);
  for (const GoldenSamples& golden : het_batched_golden_samples()) {
    const auto spec = ProtocolSpec::parse(golden.name);
    ASSERT_TRUE(spec) << golden.name;
    const TrialSet set = run_trials(g, *spec, 0, 6, 20260730ULL);
    EXPECT_EQ(set.rounds, golden.rounds) << golden.name;
    EXPECT_EQ(set.agent_rounds, golden.agent_rounds) << golden.name;
    EXPECT_EQ(set.incomplete, 0u) << golden.name;
  }
}

// On a regular graph tp=deg^-0.5 materializes to the SAME constant field
// as the equivalent plain tp, so both spec texts must simulate the exact
// same trajectories (the mode pick is field-driven, not flag-driven).
TEST(TransmissionEquivalence, DegreeScaledConstantFieldMatchesPlainTp) {
  const Graph g = gen::circulant(48, 2);  // degree 4: deg^-0.5 == 0.5
  for (const char* name : {"push", "push-pull", "visit-exchange", "frog"}) {
    const auto plain = ProtocolSpec::parse(std::string(name) + "(tp=0.5)");
    const auto scaled =
        ProtocolSpec::parse(std::string(name) + "(tp=deg^-0.5)");
    ASSERT_TRUE(plain && scaled) << name;
    const TrialSet a = run_trials(g, *plain, 0, 6, 20260730ULL);
    const TrialSet b = run_trials(g, *scaled, 0, 6, 20260730ULL);
    EXPECT_EQ(a.rounds, b.rounds) << name;
    EXPECT_EQ(a.agent_rounds, b.agent_rounds) << name;
  }
}

TEST(TransmissionEquivalence, AllOnesGeneralFieldMatchesUniformTrajectory) {
  // tp=deg^0 builds a non-trivial model whose field is identically 1: the
  // General instantiation must then consume the RNG exactly like Uniform
  // (attempt() skips the draw at p = 1), reproducing the golden samples.
  const Graph g = gen::circulant(48, 2);
  for (const char* name : {"push", "push-pull", "visit-exchange", "frog"}) {
    const auto spec =
        ProtocolSpec::parse(std::string(name) + "(tp=deg^0)");
    ASSERT_TRUE(spec) << name;
    const SimulatorEntry* entry = SimulatorRegistry::instance().find(name);
    ASSERT_NE(entry, nullptr);
    const TrialSet general = run_trials(g, *spec, 0, 6, 20260730ULL);
    const TrialSet uniform =
        run_trials(g, default_spec(entry->id), 0, 6, 20260730ULL);
    EXPECT_EQ(general.rounds, uniform.rounds) << name;
  }
}

TEST(TransmissionEquivalence, HugeStifleWindowMatchesUniformTrajectory) {
  // A stifle window longer than any trial is behaviorally inert at tp=1:
  // same informs, same draws, same samples — but through the General path.
  // stifle=2^32-1 additionally guards the 64-bit age arithmetic (a uint32
  // sum would wrap and stifle everything instantly).
  const Graph g = gen::circulant(48, 2);
  const TrialSet uniform = run_trials(
      g, default_spec(Protocol::push), 0, 6, 20260730ULL);
  for (const char* text : {"push(stifle=100000)", "push(stifle=4294967295)"}) {
    const auto spec = ProtocolSpec::parse(text);
    ASSERT_TRUE(spec) << text;
    const TrialSet general = run_trials(g, *spec, 0, 6, 20260730ULL);
    EXPECT_EQ(general.rounds, uniform.rounds) << text;
    EXPECT_EQ(general.incomplete, 0u) << text;
  }
}

// ---- Grammar round-trip -----------------------------------------------

TEST(TransmissionGrammar, CanonicalTextRoundTrips) {
  // Each line is already in canonical key order: parse → name() is the
  // identity, and re-parsing reproduces the spec bit for bit.
  const std::vector<std::string> lines = {
      "push(tp=0.5)",
      "push(tp=deg^-0.5)",
      "push(stifle=3)",
      "push(loss=0.1,tp=0.25,stifle=2,block=0.1,block@t=5)",
      "push-pull(tp=0.25,stifle=2,block=0.1,block@t=5)",
      "push-pull(tp=deg^-1,curve=on)",
      "visit-exchange(alpha=0.5,tp=deg^-1,stifle=4)",
      "meet-exchange(tp=0.5,block=0.2)",
      "hybrid(tp=deg^-0.5,block=0.25,block@t=3)",
      "frog(frogs=2,tp=0.5,stifle=6)",
      "dynamic-agent(churn=0.1,tp=0.5,stifle=3)",
      "multi-push-pull(rumors=3,tp=0.5)",
      "multi-visit-exchange(alpha=0.5,tp=0.5)",
      "async(tp=0.5)",
  };
  for (const std::string& line : lines) {
    std::string error;
    const auto spec = ProtocolSpec::parse(line, &error);
    ASSERT_TRUE(spec) << line << ": " << error;
    EXPECT_EQ(spec->name(), line);
    const auto reparsed = ProtocolSpec::parse(spec->name(), &error);
    ASSERT_TRUE(reparsed) << spec->name() << ": " << error;
    EXPECT_EQ(*reparsed, *spec) << line;
  }
}

TEST(TransmissionGrammar, RejectsWhatSimulatorsCannotHonor) {
  // Bad values, and intervention keys on simulators whose bookkeeping
  // cannot honor them (multi-rumor's packed masks, async's tick clock):
  // rejected at parse time, never silently ignored.
  for (const char* line : {
           "push(tp=0)", "push(tp=1.5)", "push(tp=-0.5)", "push(tp=deg^9)",
           "push(tp=deg^)", "push(block=1)", "push(block=-0.1)",
           "push(block@t=0)", "push(stifle=bad)",
           "multi-push-pull(stifle=3)", "multi-visit-exchange(block=0.1)",
           "async(stifle=2)", "async(block@t=4)",
       }) {
    EXPECT_FALSE(ProtocolSpec::parse(line)) << line;
  }
}

TEST(TransmissionGrammar, SweepsExpandOverTpAndStifle) {
  std::string error;
  const auto specs = expand_scenario_line(
      "complete(n=32) push(tp={0.25,0.5,1},stifle=1..4) trials=2 label=p",
      &error);
  ASSERT_TRUE(specs) << error;
  ASSERT_EQ(specs->size(), 9u);  // 3 tp values x 3 stifle points (1,2,4)
  EXPECT_EQ((*specs)[0].protocol.name(), "push(tp=0.25,stifle=1)");
  EXPECT_EQ((*specs)[0].label, "p/0.25/1");
  EXPECT_EQ((*specs)[8].protocol.name(), "push(stifle=4)");  // tp=1 default
  EXPECT_EQ((*specs)[8].label, "p/1/4");
}

// ---- Heterogeneous probabilities --------------------------------------

TEST(TransmissionBehavior, LowerTpSlowsBroadcastDeterministically) {
  const Graph g = gen::complete(64);
  const auto half = ProtocolSpec::parse("push(tp=0.5)");
  ASSERT_TRUE(half);
  const TrialSet fast =
      run_trials(g, default_spec(Protocol::push), 0, 12, 7);
  const TrialSet slow = run_trials(g, *half, 0, 12, 7);
  EXPECT_EQ(slow.incomplete, 0u);  // tp < 1 delays, never kills
  EXPECT_GT(slow.summary().mean, fast.summary().mean);
  // Determinism: heterogeneous samples are still a pure function of
  // (master seed, index).
  const TrialSet again = run_trials(g, *half, 0, 12, 7);
  EXPECT_EQ(slow.rounds, again.rounds);
}

TEST(TransmissionBehavior, HeterogeneousArenaAndOwnedTrialsAgree) {
  Rng gen_rng(5);
  const Graph g = gen::random_regular(64, 5, gen_rng);
  TrialArena arena;  // deliberately shared and dirty across specs
  for (const char* text :
       {"push(tp=0.5)", "push(tp=deg^-0.5,stifle=8)",
        "push-pull(tp=0.5,block=0.1,block@t=2)",
        "visit-exchange(tp=deg^-0.5)", "meet-exchange(tp=0.5,stifle=12)",
        "hybrid(tp=0.5)", "frog(frogs=2,tp=0.5)",
        "dynamic-agent(churn=0.05,tp=0.5)", "multi-push-pull(tp=0.5)",
        "multi-visit-exchange(tp=0.5)", "async(tp=0.5)"}) {
    const auto spec = ProtocolSpec::parse(text);
    ASSERT_TRUE(spec) << text;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const TrialResult lent = run_protocol(g, *spec, 0, seed, &arena);
      const TrialResult owned = run_protocol(g, *spec, 0, seed, nullptr);
      EXPECT_EQ(lent.rounds, owned.rounds) << text << " seed " << seed;
      EXPECT_EQ(lent.informed, owned.informed) << text << " seed " << seed;
      EXPECT_EQ(lent.completed, owned.completed) << text << " seed " << seed;
    }
  }
}

// ---- Interventions ----------------------------------------------------

TEST(TransmissionBehavior, StiflingExtinguishesAndStopsEarly) {
  // stifle=1 on a cycle: every spreader gets one call, so the rumor dies
  // within a few vertices — the run must stop at extinction, orders of
  // magnitude before the default cutoff, and report the containment.
  const Graph g = gen::cycle(64);
  const auto spec = ProtocolSpec::parse("push(stifle=1)");
  ASSERT_TRUE(spec);
  const TrialSet set = run_trials(g, *spec, 0, 16, 9);
  EXPECT_EQ(set.incomplete, 16u);  // nothing completes
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_LT(set.rounds[i], 100.0) << i;     // extinction, not cutoff
    EXPECT_LT(set.informed[i], 64.0) << i;    // contained
    EXPECT_GE(set.informed[i], 1.0) << i;     // source always informed
    // The run ends within the stifle window of the last inform.
    EXPECT_LE(set.rounds[i], set.informed[i] + 1.0) << i;
  }
}

TEST(TransmissionBehavior, StifledCurveDerivesFromInformedCurve) {
  const Graph g = gen::complete(48);
  const auto spec = ProtocolSpec::parse("push(stifle=2,curve=on)");
  ASSERT_TRUE(spec);
  TrialArena arena;
  const TrialResult r = run_protocol(g, *spec, 0, 3, &arena);
  ASSERT_FALSE(r.informed_curve.empty());
  ASSERT_EQ(r.stifled_curve.size(), r.informed_curve.size());
  for (std::size_t t = 0; t < r.stifled_curve.size(); ++t) {
    const std::uint32_t expected =
        t >= 3 ? r.informed_curve[t - 3] : 0u;
    EXPECT_EQ(r.stifled_curve[t], expected) << "round " << t;
  }
  // And the trial runner carries the curves into the TrialSet.
  const TrialSet set = run_trials(g, *spec, 0, 4, 3);
  ASSERT_EQ(set.stifled_curves.size(), 4u);
  EXPECT_FALSE(set.stifled_curves[0].empty());
  EXPECT_EQ(set.informed[0],
            static_cast<double>(set.informed_curves[0].back()));
}

TEST(TransmissionBehavior, BlockingContainsAtTheUnblockedTarget) {
  // complete(64) with the top 25% blocked (uniform degrees → ids 0..15 by
  // the tie rule). From an unblocked source the rumor reaches exactly the
  // 48 unblocked vertices, then the run halts at containment.
  const Graph g = gen::complete(64);
  const auto spec = ProtocolSpec::parse("push(block=0.25)");
  ASSERT_TRUE(spec);
  const TrialSet set = run_trials(g, *spec, 63, 8, 5);
  EXPECT_EQ(set.incomplete, 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(set.informed[i], 48.0) << i;
    EXPECT_LT(set.rounds[i], 1000.0) << i;  // containment halt, not cutoff
  }
}

TEST(TransmissionBehavior, BlockingTheStarCenterQuarantinesTheRumor) {
  // block=0.02 on star(63): ceil rounds to one vertex — the center, the
  // highest-degree vertex (targeted immunization). A leaf source then has
  // no route at all; the caller list empties and the run halts immediately
  // instead of spinning to the cutoff.
  const Graph g = gen::star(63);
  const auto spec = ProtocolSpec::parse("push(block=0.02)");
  ASSERT_TRUE(spec);
  const TrialSet set = run_trials(g, *spec, 1, 4, 11);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(set.informed[i], 1.0) << i;
    EXPECT_LE(set.rounds[i], 3.0) << i;
  }

  // The same blocked set delays nothing for the walk protocols' coverage
  // of unblocked vertices: agents walk THROUGH the quarantined center and
  // carry the rumor around it.
  const auto visitx = ProtocolSpec::parse("visit-exchange(block=0.02)");
  ASSERT_TRUE(visitx);
  const TrialSet walks = run_trials(g, *visitx, 1, 4, 11);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(walks.informed[i], 63.0) << i;  // every leaf + source
  }
}

TEST(TransmissionBehavior, CompletedRunsReportFullInformedCount) {
  const Graph g = gen::complete(32);
  const TrialSet set =
      run_trials(g, default_spec(Protocol::push), 0, 6, 2);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(set.informed[i], 32.0);
  EXPECT_EQ(set.informed_summary().mean, 32.0);
}

// ---- Scenario-level integration ---------------------------------------

TEST(TransmissionScenario, HeterogeneousSweepRunsEndToEnd) {
  std::istringstream in(
      "star(leaves=256) push(tp={0.5,1}) source=1 trials=4 label=p\n"
      "star(leaves=256) push(stifle=2) source=1 trials=4 label=stifled\n");
  std::string error;
  const auto specs = parse_scenario_stream(in, &error);
  ASSERT_TRUE(specs) << error;
  ASSERT_EQ(specs->size(), 3u);
  const auto results = run_scenarios(*specs, &error);
  ASSERT_TRUE(results) << error;
  // tp=0.5 at least as slow as tp=1 on the star (deterministic seeds).
  EXPECT_GE((*results)[0].set.summary().mean,
            (*results)[1].set.summary().mean);
  // The stifled scenario dies out: star broadcast needs the center to keep
  // calling for Θ(n log n) rounds, two rounds of spreading cannot finish.
  EXPECT_EQ((*results)[2].set.incomplete, 4u);
  EXPECT_LT((*results)[2].set.informed_summary().mean, 257.0);
}

// ---- Longest-first scheduler order (satellite) -------------------------

// A test-only simulator registered through the public extension mechanism:
// deterministic and benign by default, records its master seeds in
// execution order (for claim-order assertions), and throws on demand (for
// failure-propagation assertions, loss=0.25 as the tripwire).
std::mutex g_chaos_mutex;
std::vector<std::uint64_t> g_chaos_seeds;

constexpr double kChaosThrowLoss = 0.25;

TrialResult chaos_run(const Graph&, const ProtocolOptions& options,
                      Vertex, std::uint64_t seed, TrialArena*) {
  if (std::get<PushOptions>(options).loss_probability == kChaosThrowLoss) {
    throw std::runtime_error("chaos trial failure");
  }
  {
    std::lock_guard lock(g_chaos_mutex);
    g_chaos_seeds.push_back(seed);
  }
  TrialResult result;
  result.rounds = 1.0 + static_cast<double>(seed % 3);
  result.agent_rounds = result.rounds;
  result.informed = 1.0;
  result.completed = true;
  return result;
}

void chaos_format(const ProtocolOptions& options,
                  const ProtocolOptions& defaults,
                  spec_text::KeyValWriter& out) {
  const auto& opt = std::get<PushOptions>(options);
  if (opt.loss_probability !=
      std::get<PushOptions>(defaults).loss_probability) {
    out.add("loss", opt.loss_probability);
  }
}

bool chaos_set(ProtocolOptions& options, std::string_view key,
               std::string_view value) {
  if (key != "loss") return false;
  const auto v = spec_text::parse_double(value);
  if (!v) return false;
  std::get<PushOptions>(options).loss_probability = *v;
  return true;
}

TraceOptions* chaos_trace(ProtocolOptions&) { return nullptr; }

const SimulatorEntry& ensure_chaos_simulator() {
  static const SimulatorEntry* entry = [] {
    SimulatorEntry e;
    e.id = static_cast<Protocol>(0x7E57);
    e.name = "test-chaos";
    e.summary = "test-only simulator (execution-order probe / throw switch)";
    e.defaults = PushOptions{};
    e.run = chaos_run;
    e.format_options = chaos_format;
    e.set_option = chaos_set;
    e.trace = chaos_trace;
    SimulatorRegistry::instance().add(std::move(e));
    return SimulatorRegistry::instance().find("test-chaos");
  }();
  return *entry;
}

TEST(TrialSchedulerOrder, LongestFirstStartsTheCostliestBatch) {
  const SimulatorEntry& entry = ensure_chaos_simulator();
  const ProtocolSpec spec = default_spec(entry.id);
  Rng rng(1);
  const Graph g = gen::complete(8);
  std::vector<TrialSet> sets(3);
  std::vector<TrialBatch> batches(3);
  // File order: cheap, mid, costly — distinct seed bases identify batches.
  batches[0] = TrialBatch{.graph = &g, .protocol = &spec, .source = 0, .trials = 2, .master_seed = 1000, .out = &sets[0], .cost_hint = 10};
  batches[1] = TrialBatch{.graph = &g, .protocol = &spec, .source = 0, .trials = 2, .master_seed = 2000, .out = &sets[1], .cost_hint = 20};
  batches[2] = TrialBatch{.graph = &g, .protocol = &spec, .source = 0, .trials = 2, .master_seed = 3000, .out = &sets[2], .cost_hint = 90};
  ThreadPool pool(1);  // serial claims make the order observable

  {
    std::lock_guard lock(g_chaos_mutex);
    g_chaos_seeds.clear();
  }
  run_trial_batches(batches, {}, &pool, BatchOrder::longest_first);
  std::vector<std::uint64_t> longest_order;
  {
    std::lock_guard lock(g_chaos_mutex);
    longest_order = g_chaos_seeds;
  }
  ASSERT_EQ(longest_order.size(), 6u);
  // Costliest batch (seed base 3000) claimed first, cheapest last.
  EXPECT_EQ(longest_order[0], derive_seed(3000, 0));
  EXPECT_EQ(longest_order[1], derive_seed(3000, 1));
  EXPECT_EQ(longest_order[4], derive_seed(1000, 0));

  // Results are identical to file order, for any worker count.
  std::vector<TrialSet> file_sets(3);
  std::vector<TrialBatch> file_batches = batches;
  for (std::size_t b = 0; b < 3; ++b) file_batches[b].out = &file_sets[b];
  ThreadPool pool4(4);
  run_trial_batches(file_batches, {}, &pool4, BatchOrder::file);
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(file_sets[b].rounds, sets[b].rounds) << b;
  }
}

TEST(TrialSchedulerOrder, EmissionStaysInFileOrderUnderLongestFirst) {
  const SimulatorEntry& entry = ensure_chaos_simulator();
  const ProtocolSpec spec = default_spec(entry.id);
  Rng rng(1);
  const Graph g = gen::complete(8);
  std::vector<TrialSet> sets(3);
  std::vector<TrialBatch> batches(3);
  batches[0] = TrialBatch{.graph = &g, .protocol = &spec, .source = 0, .trials = 2, .master_seed = 1, .out = &sets[0], .cost_hint = 1};
  batches[1] = TrialBatch{.graph = &g, .protocol = &spec, .source = 0, .trials = 2, .master_seed = 2, .out = &sets[1], .cost_hint = 50};
  batches[2] = TrialBatch{.graph = &g, .protocol = &spec, .source = 0, .trials = 2, .master_seed = 3, .out = &sets[2], .cost_hint = 99};
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    ThreadPool pool(workers);
    std::vector<std::size_t> emitted;
    run_trial_batches(
        batches, [&](std::size_t b) { emitted.push_back(b); }, &pool,
        BatchOrder::longest_first);
    EXPECT_EQ(emitted, (std::vector<std::size_t>{0, 1, 2}))
        << workers << " workers";
  }
}

TEST(TrialSchedulerOrder, RunScenariosLongestFirstMatchesFileOrder) {
  std::istringstream in(
      "complete(n=16) push trials=3 label=a\n"
      "complete(n=64) push trials=3 label=b\n"
      "star(leaves=128) push source=1 trials=3 label=c\n");
  std::string error;
  const auto specs = parse_scenario_stream(in, &error);
  ASSERT_TRUE(specs) << error;
  const auto file_results = run_scenarios(*specs, &error);
  ASSERT_TRUE(file_results) << error;
  ScenarioRunOptions options;
  options.order = BatchOrder::longest_first;
  const auto longest_results = run_scenarios(*specs, &error, options);
  ASSERT_TRUE(longest_results) << error;
  for (std::size_t i = 0; i < specs->size(); ++i) {
    EXPECT_EQ((*longest_results)[i].set.rounds,
              (*file_results)[i].set.rounds)
        << i;
  }
}

// ---- Trial failure propagation (satellite bugfix) ----------------------

TEST(TrialFailure, RunTrialBatchesThrowsTypedErrorNamingTheBatch) {
  const SimulatorEntry& entry = ensure_chaos_simulator();
  ProtocolSpec good = default_spec(entry.id);
  ProtocolSpec bad = default_spec(entry.id);
  std::get<PushOptions>(bad.options).loss_probability = kChaosThrowLoss;
  Rng rng(1);
  const Graph g = gen::complete(8);
  std::vector<TrialSet> sets(2);
  std::vector<TrialBatch> batches(2);
  batches[0] = TrialBatch{.graph = &g, .protocol = &good, .source = 0, .trials = 2, .master_seed = 7, .out = &sets[0]};
  batches[1] = TrialBatch{.graph = &g, .protocol = &bad, .source = 0, .trials = 2, .master_seed = 8, .out = &sets[1]};
  ThreadPool pool(2);
  try {
    run_trial_batches(batches, {}, &pool);
    FAIL() << "expected TrialBatchError";
  } catch (const TrialBatchError& e) {
    EXPECT_EQ(e.batch_index(), 1u);
    EXPECT_STREQ(e.what(), "chaos trial failure");
  }
}

TEST(TrialFailure, RunScenariosNamesTheFailingScenario) {
  ensure_chaos_simulator();
  std::istringstream in(
      "complete(n=8) test-chaos trials=2 label=fine\n"
      "complete(n=8) test-chaos(loss=0.25) trials=2 label=boom\n");
  std::string error;
  const auto specs = parse_scenario_stream(in, &error);
  ASSERT_TRUE(specs) << error;
  EXPECT_FALSE(run_scenarios(*specs, &error));
  EXPECT_NE(error.find("test-chaos(loss=0.25)"), std::string::npos) << error;
  EXPECT_NE(error.find("chaos trial failure"), std::string::npos) << error;
}

}  // namespace
}  // namespace rumor

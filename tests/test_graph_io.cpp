// Edge-list and DOT serialization tests.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace rumor {
namespace {

TEST(GraphIo, RoundTripPreservesStructure) {
  Rng rng(4);
  const Graph original = gen::random_regular(50, 6, rng);
  std::stringstream buffer;
  save_edge_list(original, buffer);
  const Graph loaded = load_edge_list(buffer);

  ASSERT_EQ(loaded.num_vertices(), original.num_vertices());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  for (Vertex v = 0; v < original.num_vertices(); ++v) {
    const auto a = original.neighbors(v);
    const auto b = loaded.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(GraphIo, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# a comment\n"
      "\n"
      "3 2\n"
      "# another\n"
      "0 1\n"
      "1 2\n");
  const Graph g = load_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(GraphIo, RejectsMalformedHeader) {
  std::istringstream in("abc def\n");
  EXPECT_THROW((void)load_edge_list(in), std::runtime_error);
}

TEST(GraphIo, RejectsMissingHeader) {
  std::istringstream in("# only comments\n");
  EXPECT_THROW((void)load_edge_list(in), std::runtime_error);
}

TEST(GraphIo, RejectsOutOfRangeEndpoint) {
  std::istringstream in("3 1\n0 5\n");
  EXPECT_THROW((void)load_edge_list(in), std::runtime_error);
}

TEST(GraphIo, RejectsSelfLoop) {
  std::istringstream in("3 1\n1 1\n");
  EXPECT_THROW((void)load_edge_list(in), std::runtime_error);
}

TEST(GraphIo, RejectsEdgeCountMismatch) {
  std::istringstream in("3 2\n0 1\n");
  EXPECT_THROW((void)load_edge_list(in), std::runtime_error);
}

TEST(GraphIo, FileRoundTrip) {
  const Graph g = gen::cycle(12);
  const std::string path = ::testing::TempDir() + "/rumor_io_test.edges";
  save_edge_list_file(g, path);
  const Graph loaded = load_edge_list_file(path);
  EXPECT_EQ(loaded.num_edges(), 12u);
  EXPECT_TRUE(loaded.has_edge(11, 0));
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW((void)load_edge_list_file("/nonexistent/path/x.edges"),
               std::runtime_error);
}

TEST(GraphIo, DotExportShape) {
  std::ostringstream out;
  export_dot(gen::path(3), out, "P3");
  const std::string dot = out.str();
  EXPECT_EQ(dot.find("graph P3 {"), 0u);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

}  // namespace
}  // namespace rumor

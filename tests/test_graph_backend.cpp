// Graph backend tests: the implicit closed-form families must be
// indistinguishable from their materialized builders — same degrees,
// neighbor order, edge ids, endpoints, properties — and O(1) memory; the
// GraphSpec probe must agree with what make() builds; the lazy trial
// scheduler must produce byte-identical samples to the eager path.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "alloc_probe.hpp"
#include "core/protocol_spec.hpp"
#include "experiments/scenario.hpp"
#include "experiments/trials.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/implicit.hpp"
#include "support/trial_arena.hpp"

namespace rumor {
namespace {

Graph implicit_graph(ImplicitKind kind, std::uint64_t a, std::uint64_t b) {
  ImplicitDesc desc;
  std::string why;
  EXPECT_TRUE(make_implicit_desc(kind, a, b, desc, &why)) << why;
  return Graph::make_implicit(desc);
}

// Exhaustive structural equality: every accessor, every slot, every edge.
void expect_same_graph(const Graph& imp, const Graph& ref) {
  ASSERT_EQ(imp.num_vertices(), ref.num_vertices());
  ASSERT_EQ(imp.num_edges(), ref.num_edges());
  EXPECT_EQ(imp.min_degree(), ref.min_degree());
  EXPECT_EQ(imp.max_degree(), ref.max_degree());
  EXPECT_EQ(imp.degrees_all_pow2(), ref.degrees_all_pow2());
  for (Vertex v = 0; v < ref.num_vertices(); ++v) {
    ASSERT_EQ(imp.degree(v), ref.degree(v)) << "v=" << v;
    for (std::uint32_t i = 0; i < ref.degree(v); ++i) {
      ASSERT_EQ(imp.neighbor(v, i), ref.neighbor(v, i))
          << "v=" << v << " i=" << i;
      ASSERT_EQ(imp.edge_id(v, i), ref.edge_id(v, i))
          << "v=" << v << " i=" << i;
    }
  }
  for (EdgeId e = 0; e < ref.num_edges(); ++e) {
    ASSERT_EQ(imp.edge_endpoints(e), ref.edge_endpoints(e)) << "e=" << e;
  }
  for (Vertex u = 0; u < ref.num_vertices(); ++u) {
    for (Vertex v = 0; v < ref.num_vertices(); ++v) {
      ASSERT_EQ(imp.has_edge(u, v), ref.has_edge(u, v))
          << "u=" << u << " v=" << v;
    }
  }
  const GraphProperties& pi = imp.properties();
  const GraphProperties& pr = ref.properties();
  EXPECT_EQ(pi.connected, pr.connected);
  EXPECT_EQ(pi.bipartite, pr.bipartite);
  EXPECT_EQ(pi.regular, pr.regular);
  EXPECT_EQ(pi.degrees_all_pow2, pr.degrees_all_pow2);
}

TEST(ImplicitBackend, StarMatchesBuilder) {
  for (const Vertex leaves : {2u, 3u, 7u, 64u}) {
    SCOPED_TRACE(leaves);
    expect_same_graph(implicit_graph(ImplicitKind::star, leaves, 0),
                      gen::star(leaves));
  }
}

TEST(ImplicitBackend, CycleMatchesBuilder) {
  for (const Vertex n : {3u, 4u, 5u, 33u}) {
    SCOPED_TRACE(n);
    expect_same_graph(implicit_graph(ImplicitKind::cycle, n, 0),
                      gen::cycle(n));
  }
}

TEST(ImplicitBackend, CompleteMatchesBuilder) {
  for (const Vertex n : {2u, 3u, 5u, 17u}) {
    SCOPED_TRACE(n);
    expect_same_graph(implicit_graph(ImplicitKind::complete, n, 0),
                      gen::complete(n));
  }
}

TEST(ImplicitBackend, GridMatchesBuilder) {
  const std::pair<Vertex, Vertex> shapes[] = {
      {1, 2}, {2, 1}, {1, 9}, {9, 1}, {2, 2}, {3, 4}, {5, 3}, {7, 7}};
  for (const auto& [rows, cols] : shapes) {
    SCOPED_TRACE(std::to_string(rows) + "x" + std::to_string(cols));
    expect_same_graph(implicit_graph(ImplicitKind::grid, rows, cols),
                      gen::grid2d(rows, cols));
  }
}

TEST(ImplicitBackend, TorusMatchesBuilder) {
  const std::pair<Vertex, Vertex> shapes[] = {
      {3, 3}, {3, 4}, {4, 3}, {4, 4}, {5, 7}, {6, 6}};
  for (const auto& [rows, cols] : shapes) {
    SCOPED_TRACE(std::to_string(rows) + "x" + std::to_string(cols));
    expect_same_graph(implicit_graph(ImplicitKind::torus, rows, cols),
                      gen::torus2d(rows, cols));
  }
}

TEST(ImplicitBackend, CirculantMatchesBuilder) {
  const std::pair<Vertex, std::uint32_t> shapes[] = {
      {4, 1}, {6, 2}, {8, 3}, {10, 4},  // boundary n == 2k + 2
      {9, 2}, {16, 4}, {33, 5}};
  for (const auto& [n, k] : shapes) {
    SCOPED_TRACE(std::to_string(n) + "," + std::to_string(k));
    expect_same_graph(implicit_graph(ImplicitKind::circulant, n, k),
                      gen::circulant(n, k));
  }
}

TEST(ImplicitBackend, RejectsGeneratorPreconditionViolations) {
  ImplicitDesc desc;
  std::string why;
  EXPECT_FALSE(make_implicit_desc(ImplicitKind::star, 1, 0, desc, &why));
  EXPECT_FALSE(make_implicit_desc(ImplicitKind::cycle, 2, 0, desc, &why));
  EXPECT_FALSE(make_implicit_desc(ImplicitKind::complete, 1, 0, desc, &why));
  EXPECT_FALSE(make_implicit_desc(ImplicitKind::grid, 1, 1, desc, &why));
  EXPECT_FALSE(make_implicit_desc(ImplicitKind::torus, 2, 5, desc, &why));
  EXPECT_FALSE(
      make_implicit_desc(ImplicitKind::circulant, 5, 2, desc, &why));
  // Representation limits: complete(2^17) has ~2^33 edge slots.
  EXPECT_FALSE(
      make_implicit_desc(ImplicitKind::complete, 1u << 17, 0, desc, &why));
  EXPECT_NE(why.find("too large"), std::string::npos) << why;
}

// ---- Random-neighbor equivalence --------------------------------------
//
// The per-call draw path must consume the RNG identically on both
// backends so seeded trajectories cannot depend on the storage choice.

TEST(ImplicitBackend, RandomNeighborDrawsMatchMaterialized) {
  const Graph imp = implicit_graph(ImplicitKind::torus, 5, 7);
  const Graph ref = gen::torus2d(5, 7);
  Rng rng_a(42);
  Rng rng_b(42);
  for (int step = 0; step < 2000; ++step) {
    const Vertex v = static_cast<Vertex>(step % imp.num_vertices());
    ASSERT_EQ(imp.random_neighbor(v, rng_a), ref.random_neighbor(v, rng_b));
  }
  // The streams stayed in lockstep.
  EXPECT_EQ(rng_a(), rng_b());
}

// ---- GraphSpec probe vs. build ----------------------------------------

TEST(GraphProbe, SizesMatchBuiltGraphForEveryFamily) {
  const char* kSpecs[] = {
      "star(leaves=10)",     "double_star(leaves=6)",
      "heavy_tree(n=15)",    "siamese(n=9)",
      "cycle_stars_cliques(k=3)", "complete(n=7)",
      "cycle(n=9)",          "path(n=8)",
      "grid(rows=3,cols=5)", "torus(rows=3,cols=4)",
      "hypercube(dim=4)",    "circulant(n=12,k=3)",
      "clique_ring(groups=4,k=3)", "clique_path(groups=4,k=3)",
      "random_regular(n=16,d=3)", "barbell(k=5)",
      "star_of_cliques(c=3,k=4)", "binary_tree(n=12)",
      "star(leaves=10,backend=owned)", "grid(rows=1,cols=7)"};
  for (const char* text : kSpecs) {
    SCOPED_TRACE(text);
    std::string error;
    const auto spec = GraphSpec::parse(text, &error);
    ASSERT_TRUE(spec) << error;
    const auto probe = spec->probe(&error);
    ASSERT_TRUE(probe) << error;
    Rng rng(7);
    const Graph g = spec->make(rng);
    EXPECT_EQ(probe->n, g.num_vertices());
    EXPECT_EQ(probe->m, g.num_edges());
    EXPECT_EQ(probe->backend, g.backend());
    if (probe->backend == GraphBackend::implicit) {
      EXPECT_EQ(probe->graph_bytes, 0u);
    } else {
      EXPECT_GT(probe->graph_bytes, 0u);
    }
  }
}

TEST(GraphProbe, ReportsTypedErrorsInsteadOfBuilding) {
  std::string error;
  const auto bad = GraphSpec::parse("torus(rows=2,cols=9)", &error);
  ASSERT_TRUE(bad);  // parse accepts it; probe rejects it
  EXPECT_FALSE(bad->probe(&error));
  EXPECT_NE(error.find("torus"), std::string::npos) << error;

  const auto missing = GraphSpec::parse("file:/nonexistent/edges.txt");
  ASSERT_TRUE(missing);
  error.clear();
  EXPECT_FALSE(missing->probe(&error));
  EXPECT_NE(error.find("/nonexistent/edges.txt"), std::string::npos) << error;
}

TEST(GraphSpecGrammar, BackendKeyRoundTripsAndValidates) {
  std::string error;
  const auto owned = GraphSpec::parse("star(leaves=8,backend=owned)", &error);
  ASSERT_TRUE(owned) << error;
  EXPECT_EQ(owned->backend, GraphBackendChoice::owned);
  EXPECT_EQ(owned->resolved_backend(), GraphBackend::owned);
  EXPECT_EQ(owned->name(), "star(leaves=8,backend=owned)");
  EXPECT_EQ(GraphSpec::parse(owned->name()), *owned);

  const auto imp = GraphSpec::parse("star(leaves=8,backend=implicit)");
  ASSERT_TRUE(imp);
  EXPECT_EQ(imp->resolved_backend(), GraphBackend::implicit);

  const auto auto_spec = GraphSpec::parse("star(leaves=8)");
  ASSERT_TRUE(auto_spec);
  EXPECT_EQ(auto_spec->backend, GraphBackendChoice::automatic);
  EXPECT_EQ(auto_spec->resolved_backend(), GraphBackend::implicit);
  EXPECT_EQ(auto_spec->name(), "star(leaves=8)");  // default stays implicit

  // Families without closed forms resolve to owned and reject backend=implicit.
  const auto tree = GraphSpec::parse("binary_tree(n=15)");
  ASSERT_TRUE(tree);
  EXPECT_EQ(tree->resolved_backend(), GraphBackend::owned);
  EXPECT_FALSE(GraphSpec::parse("binary_tree(n=15,backend=implicit)", &error));
  EXPECT_NE(error.find("implicit"), std::string::npos) << error;
  EXPECT_FALSE(GraphSpec::parse("star(leaves=8,backend=nope)", &error));
}

// ---- Trial equivalence across backends --------------------------------
//
// The acceptance contract: switching star/cycle/... to the implicit
// backend must keep every seeded sample byte-identical. Exercised per
// protocol through the same run_trials path rumor_run uses.

TEST(ImplicitBackend, TrialsMatchMaterializedAcrossProtocols) {
  const Graph imp = implicit_graph(ImplicitKind::star, 48, 0);
  const Graph ref = gen::star(48);
  const char* kProtocols[] = {"push", "push-pull", "visit-exchange",
                              "meet-exchange", "hybrid",
                              "push(tp=0.5,curve=on)",
                              "visit-exchange(tp=deg^-1)"};
  for (const char* text : kProtocols) {
    SCOPED_TRACE(text);
    std::string error;
    const auto spec = ProtocolSpec::parse(text, &error);
    ASSERT_TRUE(spec) << error;
    const TrialSet a = run_trials(imp, *spec, 1, 5, 123);
    const TrialSet b = run_trials(ref, *spec, 1, 5, 123);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.agent_rounds, b.agent_rounds);
    EXPECT_EQ(a.informed, b.informed);
    EXPECT_EQ(a.informed_curves, b.informed_curves);
  }
}

// ---- Lazy scheduler ----------------------------------------------------

TEST(LazyScheduler, LazyBatchesMatchEagerResults) {
  const Graph eager_graph = implicit_graph(ImplicitKind::cycle, 40, 0);
  const auto graph_spec = GraphSpec::parse("cycle(n=40)");
  ASSERT_TRUE(graph_spec);
  const auto protocol = ProtocolSpec::parse("push-pull");
  ASSERT_TRUE(protocol);

  TrialSet eager;
  TrialSet lazy;
  TrialBatch batch;
  batch.protocol = &*protocol;
  batch.source = 3;
  batch.trials = 6;
  batch.master_seed = 99;

  batch.graph = &eager_graph;
  batch.out = &eager;
  run_trial_batches({batch});

  batch.graph = nullptr;
  batch.lazy_spec = &*graph_spec;
  batch.out = &lazy;
  run_trial_batches({batch});

  EXPECT_EQ(eager.rounds, lazy.rounds);
  EXPECT_EQ(eager.informed, lazy.informed);
}

TEST(LazyScheduler, ScenarioRunsValidateWithoutBuildingAndMatchEager) {
  // A deterministic scenario validates analytically; an impossible source
  // must be caught before any trial even with no graph built.
  const auto bad = ScenarioSpec::parse("star(leaves=16) push source=200");
  ASSERT_TRUE(bad);
  std::string error;
  EXPECT_FALSE(validate_scenarios({*bad}, &error));
  EXPECT_NE(error.find("source=200"), std::string::npos) << error;

  const auto good =
      ScenarioSpec::parse("star(leaves=16) push source=1 trials=4 seed=7");
  ASSERT_TRUE(good);
  const auto via_scheduler = run_scenario(*good, &error);
  ASSERT_TRUE(via_scheduler) << error;
  const auto protocol = ProtocolSpec::parse("push");
  ASSERT_TRUE(protocol);
  const TrialSet direct = run_trials(gen::star(16), *protocol, 1, 4, 7);
  EXPECT_EQ(via_scheduler->set.rounds, direct.rounds);
  EXPECT_EQ(via_scheduler->n, 17u);
  EXPECT_EQ(via_scheduler->edges, 16u);
}

// ---- O(1) memory ------------------------------------------------------

TEST(ImplicitBackend, TenMillionLeafStarAllocatesNoAdjacency) {
  // Construction: a 10^7-leaf star's CSR would be ~280 MB (24m + 4n). The
  // implicit build may allocate control blocks (shared property state),
  // nothing proportional to the graph.
  constexpr std::uint64_t kLeaves = 10'000'000;
  std::size_t build_bytes = 0;
  ImplicitDesc desc;
  ASSERT_TRUE(make_implicit_desc(ImplicitKind::star, kLeaves, 0, desc));
  {
    test_alloc::CountScope count;
    const Graph g = Graph::make_implicit(desc);
    build_bytes = test_alloc::g_bytes.load();
    EXPECT_EQ(g.num_vertices(), kLeaves + 1);
  }
  EXPECT_LT(build_bytes, 4096u) << "implicit build must be O(1) memory";

  // A push trial on it: the arena's per-vertex state is O(n) and expected;
  // adjacency storage (~280 MB) is not. Warm the arena once, then count a
  // steady-state trial — on the implicit backend it must allocate NOTHING,
  // which is only possible if no adjacency is ever materialized.
  const Graph g = Graph::make_implicit(desc);
  const auto protocol = ProtocolSpec::parse("push(max_rounds=8)");
  ASSERT_TRUE(protocol);
  TrialArena arena;
  (void)run_protocol(g, *protocol, 0, 1, &arena);
  std::size_t steady_allocs = 0;
  {
    test_alloc::CountScope count;
    (void)run_protocol(g, *protocol, 0, 2, &arena);
    steady_allocs = test_alloc::g_allocations.load();
  }
  EXPECT_EQ(steady_allocs, 0u);
}

}  // namespace
}  // namespace rumor

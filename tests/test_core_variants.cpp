// Hybrid, asynchronous, and dynamic-agent protocol variants.
#include <gtest/gtest.h>

#include <cmath>

#include "core/async.hpp"
#include "core/dynamic_agents.hpp"
#include "core/hybrid.hpp"
#include "core/push_pull.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"
#include "support/stats.hpp"

namespace rumor {
namespace {

TEST(Hybrid, CompletesEverywhere) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    EXPECT_TRUE(run_hybrid(gen::star(64), 1, seed).completed);
    EXPECT_TRUE(run_hybrid(gen::double_star(64), 2, seed).completed);
    EXPECT_TRUE(run_hybrid(gen::heavy_binary_tree(63), 62, seed).completed);
    EXPECT_TRUE(run_hybrid(gen::complete(64), 0, seed).completed);
  }
}

TEST(Hybrid, NoSlowerThanEitherComponentOnSeparatingGraphs) {
  // The paper's motivation for combining: hybrid should track the better
  // of push-pull (heavy tree) and visit-exchange (double star).
  const Graph dstar = gen::double_star(256);
  const Graph htree = gen::heavy_binary_tree(255);
  std::vector<double> hybrid_ds, ppull_ds, hybrid_ht, visitx_ht;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    hybrid_ds.push_back(static_cast<double>(run_hybrid(dstar, 2, seed).rounds));
    ppull_ds.push_back(
        static_cast<double>(run_push_pull(dstar, 2, seed).rounds));
    hybrid_ht.push_back(
        static_cast<double>(run_hybrid(htree, 254, seed).rounds));
    visitx_ht.push_back(
        static_cast<double>(run_visit_exchange(htree, 254, seed).rounds));
  }
  // On the double star, hybrid (via its agents) beats pure push-pull's
  // Ω(n) bridge wait by a wide margin.
  EXPECT_LT(Summary::of(hybrid_ds).mean, 0.5 * Summary::of(ppull_ds).mean);
  // On the heavy tree, hybrid (via push-pull) beats pure visit-exchange's
  // Ω(n) root wait.
  EXPECT_LT(Summary::of(hybrid_ht).mean, 0.5 * Summary::of(visitx_ht).mean);
}

TEST(Hybrid, MonotoneAndConsistentTrace) {
  WalkOptions options;
  options.trace.informed_curve = true;
  const RunResult r = run_hybrid(gen::grid2d(8, 8), 0, 3, options);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.informed_curve.size(), r.rounds + 1);
  for (std::size_t i = 1; i < r.informed_curve.size(); ++i) {
    EXPECT_GE(r.informed_curve[i], r.informed_curve[i - 1]);
  }
  EXPECT_EQ(r.informed_curve.back(), 64u);
}

TEST(Hybrid, AutoBipartiteResolvesLazyOnEvenCycle) {
  // Regression: the seed implementation mapped auto_bipartite to `never`
  // regardless of the graph, so hybrid walks on bipartite graphs stayed
  // non-lazy. Resolution now goes through resolve_laziness, backed by the
  // graph's memoized property cache.
  WalkOptions options;
  options.lazy = LazyMode::auto_bipartite;
  const Graph even = gen::cycle(64);
  EXPECT_EQ(HybridProcess(even, 0, 1, options).laziness(), Laziness::half);
  const Graph odd = gen::cycle(63);
  EXPECT_EQ(HybridProcess(odd, 0, 1, options).laziness(), Laziness::none);
  const Graph grid = gen::grid2d(6, 6);  // bipartite, non-cycle
  EXPECT_EQ(HybridProcess(grid, 0, 1, options).laziness(), Laziness::half);
  // Explicit modes are unaffected.
  options.lazy = LazyMode::never;
  EXPECT_EQ(HybridProcess(even, 0, 1, options).laziness(), Laziness::none);
  options.lazy = LazyMode::always;
  EXPECT_EQ(HybridProcess(odd, 0, 1, options).laziness(), Laziness::half);
  // And lazy hybrid still completes on the bipartite graph.
  options.lazy = LazyMode::auto_bipartite;
  EXPECT_TRUE(run_hybrid(even, 0, 2, options).completed);
}

TEST(Async, CompletesAndReportsTimeUnits) {
  const Graph g = gen::complete(128);
  const AsyncResult r = run_async_push_pull(g, 0, 5);
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.ticks, 0u);
  EXPECT_NEAR(r.time_units, static_cast<double>(r.ticks) / 128.0, 1e-9);
}

TEST(Async, PushOnlyModeSlowerOnStar) {
  // Without pull, the star reverts to coupon-collector behavior.
  const Graph g = gen::star(128);
  AsyncOptions push_only;
  push_only.pull_enabled = false;
  std::vector<double> with_pull, without_pull;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    with_pull.push_back(run_async_push_pull(g, 0, seed).time_units);
    without_pull.push_back(
        run_async_push_pull(g, 0, seed, push_only).time_units);
  }
  EXPECT_GT(Summary::of(without_pull).mean,
            3 * Summary::of(with_pull).mean);
}

TEST(Async, ComparableToSyncOnRegularGraph) {
  // Related work (§2): async and sync push-pull broadcast times agree to
  // constant factors on regular graphs.
  Rng grng(3);
  const Graph g = gen::random_regular(512, 12, grng);
  std::vector<double> sync_t, async_t;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    sync_t.push_back(static_cast<double>(run_push_pull(g, 0, seed).rounds));
    async_t.push_back(run_async_push_pull(g, 0, seed).time_units);
  }
  const double ratio = Summary::of(async_t).mean / Summary::of(sync_t).mean;
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 5.0);
}

TEST(Async, CutoffReported) {
  const Graph g = gen::double_star(512);
  AsyncOptions options;
  options.max_ticks = 100;
  const AsyncResult r = run_async_push_pull(g, 2, 1, options);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.ticks, 100u);
}

TEST(DynamicAgents, ZeroChurnMatchesPlainVisitExchangeInDistribution) {
  const Graph g = gen::hypercube(7);
  std::vector<double> plain, dynamic;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    plain.push_back(
        static_cast<double>(run_visit_exchange(g, 0, seed).rounds));
    dynamic.push_back(static_cast<double>(
        run_dynamic_visit_exchange(g, 0, seed + 500).rounds));
  }
  const Summary sp = Summary::of(plain);
  const Summary sd = Summary::of(dynamic);
  EXPECT_NEAR(sp.mean, sd.mean, 5 * (sp.stderr_mean + sd.stderr_mean) + 0.5);
}

TEST(DynamicAgents, ChurnSlowsButCompletes) {
  Rng grng(9);
  const Graph g = gen::random_regular(256, 8, grng);
  DynamicAgentOptions churny;
  churny.churn = 0.2;
  std::vector<double> clean_t, churn_t;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    clean_t.push_back(
        static_cast<double>(run_dynamic_visit_exchange(g, 0, seed).rounds));
    const RunResult r = run_dynamic_visit_exchange(g, 0, seed, churny);
    EXPECT_TRUE(r.completed);
    churn_t.push_back(static_cast<double>(r.rounds));
  }
  // Churn discards informed agents, so it cannot speed things up.
  EXPECT_GE(Summary::of(churn_t).mean, 0.9 * Summary::of(clean_t).mean);
}

TEST(DynamicAgents, BulkLossSurvivable) {
  Rng grng(11);
  const Graph g = gen::random_regular(256, 8, grng);
  DynamicAgentOptions options;
  options.loss_round = 2;
  options.loss_fraction = 0.5;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    DynamicVisitExchangeProcess p(g, 0, seed, options);
    const RunResult r = p.run();
    EXPECT_TRUE(r.completed);
    EXPECT_LT(p.alive_agent_count(), 256u);  // agents actually died
    EXPECT_GT(p.alive_agent_count(), 64u);   // ...about half, not all
  }
}

TEST(DynamicAgents, RejectsEdgelessGraph) {
  // The degree-weighted stationary distribution that places and respawns
  // agents is degenerate (all weights zero) without edges; the constructor
  // must fail the precondition up front rather than die inside the alias
  // sampler mid-respawn.
  const Graph edgeless(4, {});
  EXPECT_DEATH(DynamicVisitExchangeProcess(edgeless, 0, 1), "precondition");
}

TEST(DynamicAgents, TotalLossStallsAfterLocalFlood) {
  // Killing every agent freezes dissemination: vertices informed so far
  // stay informed, no new ones are added, and the cutoff is hit.
  const Graph g = gen::cycle(64);
  DynamicAgentOptions options;
  options.loss_round = 1;
  options.loss_fraction = 1.0;
  options.walk.max_rounds = 2000;
  const RunResult r = run_dynamic_visit_exchange(g, 0, 7, options);
  EXPECT_FALSE(r.completed);
}

}  // namespace
}  // namespace rumor

// Batched walk-kernel tests: engine equivalence (batched vs. checked
// scalar, bit-identical trajectories), the power-of-two fast path, the
// fused lazy draw, traced-vs-untraced RNG determinism (the
// visit/meet-exchange divergence fix), and the Philox counter engine
// (deterministic, uniform, one serial draw per call).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/meet_exchange.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"
#include "walk/step_kernel.hpp"

namespace rumor {
namespace {

std::vector<Graph> test_graphs() {
  Rng rng(12345);
  std::vector<Graph> graphs;
  graphs.push_back(gen::hypercube(8));          // degree 8: pow2 fast path
  graphs.push_back(gen::circulant(96, 8));      // degree 16: pow2 fast path
  graphs.push_back(gen::cycle(64));             // degree 2: pow2, bipartite
  graphs.push_back(gen::heavy_binary_tree(63)); // mixed degrees, non-pow2
  graphs.push_back(gen::random_regular(100, 5, rng));  // odd degree
  graphs.push_back(gen::star(33));              // extreme degree skew
  return graphs;
}

// The two engines must produce bit-identical position arrays from the same
// seed — the pow2 shift and the prefetched batched loop are pure
// strength-reductions of the scalar checked path.
TEST(StepKernel, EnginesProduceIdenticalTrajectories) {
  for (const Graph& g : test_graphs()) {
    for (Laziness lazy : {Laziness::none, Laziness::half}) {
      for (std::uint64_t seed = 0; seed < 5; ++seed) {
        Rng rng_a(seed), rng_b(seed);
        std::vector<Vertex> pos_a(g.num_vertices());
        for (Vertex v = 0; v < g.num_vertices(); ++v) pos_a[v] = v;
        std::vector<Vertex> pos_b = pos_a;
        std::vector<std::uint64_t> traffic_a(g.num_edges(), 0);
        std::vector<std::uint64_t> traffic_b(g.num_edges(), 0);
        for (int round = 0; round < 20; ++round) {
          step_walks(g, pos_a, rng_a, lazy, traffic_a.data(),
                     StepEngine::batched);
          step_walks(g, pos_b, rng_b, lazy, traffic_b.data(),
                     StepEngine::scalar_checked);
        }
        EXPECT_EQ(pos_a, pos_b) << "lazy=" << (lazy == Laziness::half)
                                << " seed=" << seed;
        EXPECT_EQ(traffic_a, traffic_b);
        // Engines must also have consumed the same number of draws.
        EXPECT_EQ(rng_a(), rng_b());
      }
    }
  }
}

// Tracing must observe the walk, not perturb it: with identical seeds the
// traced and untraced kernels yield identical positions.
TEST(StepKernel, TracedAndUntracedConsumeRngIdentically) {
  for (const Graph& g : test_graphs()) {
    for (Laziness lazy : {Laziness::none, Laziness::half}) {
      Rng rng_a(7), rng_b(7);
      std::vector<Vertex> pos_a(g.num_vertices());
      for (Vertex v = 0; v < g.num_vertices(); ++v) pos_a[v] = v;
      std::vector<Vertex> pos_b = pos_a;
      std::vector<std::uint64_t> traffic(g.num_edges(), 0);
      for (int round = 0; round < 20; ++round) {
        step_walks(g, pos_a, rng_a, lazy, traffic.data());
        step_walks(g, pos_b, rng_b, lazy, nullptr);
      }
      EXPECT_EQ(pos_a, pos_b);
      EXPECT_EQ(rng_a(), rng_b());
    }
  }
}

TEST(StepKernel, StepsLandOnNeighborsOrStay) {
  for (const Graph& g : test_graphs()) {
    for (Laziness lazy : {Laziness::none, Laziness::half}) {
      Rng rng(3);
      std::vector<Vertex> pos(g.num_vertices());
      for (Vertex v = 0; v < g.num_vertices(); ++v) pos[v] = v;
      std::vector<Vertex> before = pos;
      step_walks(g, pos, rng, lazy);
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        if (lazy == Laziness::half && pos[v] == before[v]) continue;
        EXPECT_TRUE(g.has_edge(before[v], pos[v]));
      }
    }
  }
}

// Pow2 fast path correctness beyond equivalence: the drawn neighbor is
// uniform. Hypercube degree 8, 32k draws per start slot.
TEST(StepKernel, Pow2FastPathIsUniform) {
  const Graph g = gen::hypercube(8);
  ASSERT_TRUE(g.degrees_all_pow2());
  const Vertex start = 17;
  const int draws = 32000;
  std::vector<int> hits(g.num_vertices(), 0);
  Rng rng(11);
  std::vector<Vertex> pos(1);
  for (int i = 0; i < draws; ++i) {
    pos[0] = start;
    step_walks(g, pos, rng, Laziness::none);
    ++hits[pos[0]];
  }
  const double expected = draws / 8.0;
  for (Vertex w : g.neighbors(start)) {
    EXPECT_NEAR(hits[w], expected, 5 * std::sqrt(expected)) << "w=" << w;
  }
}

// The fused draw keeps the lazy coin fair and the conditional step uniform.
TEST(StepKernel, FusedLazyDrawIsFairAndUniform) {
  const Graph g = gen::circulant(64, 2);  // degree 4
  const Vertex start = 0;
  const int draws = 40000;
  int stayed = 0;
  std::vector<int> hits(g.num_vertices(), 0);
  Rng rng(13);
  std::vector<Vertex> pos(1);
  for (int i = 0; i < draws; ++i) {
    pos[0] = start;
    step_walks(g, pos, rng, Laziness::half);
    if (pos[0] == start) {
      ++stayed;
    } else {
      ++hits[pos[0]];
    }
  }
  EXPECT_NEAR(stayed, draws / 2.0, 5 * std::sqrt(draws / 2.0));
  const double expected = (draws - stayed) / 4.0;
  for (Vertex w : g.neighbors(start)) {
    EXPECT_NEAR(hits[w], expected, 5 * std::sqrt(expected)) << "w=" << w;
  }
}

// Non-pow2 fused lazy draw: rejection sampling stays unbiased.
TEST(StepKernel, FusedLazyDrawUniformOnOddDegree) {
  Rng gen_rng(5);
  const Graph g = gen::random_regular(30, 3, gen_rng);
  const Vertex start = 0;
  const int draws = 30000;
  int stayed = 0;
  std::vector<int> hits(g.num_vertices(), 0);
  Rng rng(17);
  std::vector<Vertex> pos(1);
  for (int i = 0; i < draws; ++i) {
    pos[0] = start;
    step_walks(g, pos, rng, Laziness::half);
    if (pos[0] == start) {
      ++stayed;
    } else {
      ++hits[pos[0]];
    }
  }
  EXPECT_NEAR(stayed, draws / 2.0, 5 * std::sqrt(draws / 2.0));
  const double expected = (draws - stayed) / 3.0;
  for (Vertex w : g.neighbors(start)) {
    EXPECT_NEAR(hits[w], expected, 5 * std::sqrt(expected)) << "w=" << w;
  }
}

// Whole-protocol engine equivalence: same (graph, protocol, seed) must give
// an identical RunResult whichever engine runs the stepping loop — the
// acceptance check for the unchecked/batched refactor.
TEST(StepKernel, VisitExchangeRunResultIdenticalAcrossEngines) {
  for (const Graph& g : test_graphs()) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      WalkOptions a;
      a.trace.informed_curve = true;
      a.trace.inform_rounds = true;
      a.trace.edge_traffic = true;
      WalkOptions b = a;
      a.engine = StepEngine::batched;
      b.engine = StepEngine::scalar_checked;
      const RunResult ra = run_visit_exchange(g, 0, seed, a);
      const RunResult rb = run_visit_exchange(g, 0, seed, b);
      EXPECT_EQ(ra.rounds, rb.rounds);
      EXPECT_EQ(ra.completed, rb.completed);
      EXPECT_EQ(ra.agent_rounds, rb.agent_rounds);
      EXPECT_EQ(ra.informed_curve, rb.informed_curve);
      EXPECT_EQ(ra.vertex_inform_round, rb.vertex_inform_round);
      EXPECT_EQ(ra.agent_inform_round, rb.agent_inform_round);
      EXPECT_EQ(ra.edge_traffic, rb.edge_traffic);
    }
  }
}

TEST(StepKernel, MeetExchangeRunResultIdenticalAcrossEngines) {
  for (const Graph& g : test_graphs()) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      WalkOptions a = MeetExchangeProcess::default_options();
      a.trace.informed_curve = true;
      a.trace.inform_rounds = true;
      a.trace.edge_traffic = true;
      WalkOptions b = a;
      a.engine = StepEngine::batched;
      b.engine = StepEngine::scalar_checked;
      const RunResult ra = run_meet_exchange(g, 0, seed, a);
      const RunResult rb = run_meet_exchange(g, 0, seed, b);
      EXPECT_EQ(ra.rounds, rb.rounds);
      EXPECT_EQ(ra.completed, rb.completed);
      EXPECT_EQ(ra.informed_curve, rb.informed_curve);
      EXPECT_EQ(ra.agent_inform_round, rb.agent_inform_round);
      EXPECT_EQ(ra.edge_traffic, rb.edge_traffic);
    }
  }
}

// The regression test for the RNG-draw divergence bug: with Laziness::half,
// enabling edge tracing used to consume draws in a different order than the
// plain path, so the same seed simulated a different trajectory. Both paths
// now run the same kernel; rounds must match exactly.
TEST(StepKernel, TracingDoesNotChangeVisitExchangeTrajectory) {
  for (const Graph& g : test_graphs()) {
    for (LazyMode lazy : {LazyMode::never, LazyMode::always}) {
      for (std::uint64_t seed = 0; seed < 8; ++seed) {
        WalkOptions plain;
        plain.lazy = lazy;
        WalkOptions traced = plain;
        traced.trace.edge_traffic = true;
        const RunResult rp = run_visit_exchange(g, 0, seed, plain);
        const RunResult rt = run_visit_exchange(g, 0, seed, traced);
        EXPECT_EQ(rp.rounds, rt.rounds)
            << "lazy=" << static_cast<int>(lazy) << " seed=" << seed;
        EXPECT_EQ(rp.agent_rounds, rt.agent_rounds);
        EXPECT_EQ(rp.completed, rt.completed);
      }
    }
  }
}

TEST(StepKernel, TracingDoesNotChangeMeetExchangeTrajectory) {
  for (const Graph& g : test_graphs()) {
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      WalkOptions plain = MeetExchangeProcess::default_options();
      WalkOptions traced = plain;
      traced.trace.edge_traffic = true;
      const RunResult rp = run_meet_exchange(g, 0, seed, plain);
      const RunResult rt = run_meet_exchange(g, 0, seed, traced);
      EXPECT_EQ(rp.rounds, rt.rounds) << "seed=" << seed;
      EXPECT_EQ(rp.completed, rt.completed);
    }
  }
}

// ---- counter engine ---------------------------------------------------

// The Philox counter engine is a different (but equally valid) trajectory
// per seed: it must be a pure function of the serial RNG state, land only
// on neighbors, and consume exactly ONE serial draw per call (the stream
// key), independent of agent count — that is the whole point of the
// addressable stream.
TEST(StepKernel, CounterEngineIsDeterministicAndValid) {
  for (const Graph& g : test_graphs()) {
    for (Laziness lazy : {Laziness::none, Laziness::half}) {
      Rng rng_a(21), rng_b(21);
      std::vector<Vertex> pos_a(g.num_vertices());
      for (Vertex v = 0; v < g.num_vertices(); ++v) pos_a[v] = v;
      std::vector<Vertex> pos_b = pos_a;
      for (int round = 0; round < 10; ++round) {
        std::vector<Vertex> before = pos_a;
        step_walks(g, pos_a, rng_a, lazy, nullptr, StepEngine::counter);
        step_walks(g, pos_b, rng_b, lazy, nullptr, StepEngine::counter);
        EXPECT_EQ(pos_a, pos_b);
        for (Vertex v = 0; v < g.num_vertices(); ++v) {
          if (lazy == Laziness::half && pos_a[v] == before[v]) continue;
          EXPECT_TRUE(g.has_edge(before[v], pos_a[v]));
        }
      }
      // Same serial stream consumption on both replicas.
      EXPECT_EQ(rng_a(), rng_b());
    }
  }
}

TEST(StepKernel, CounterEngineConsumesOneSerialDrawPerCall) {
  const Graph g = gen::circulant(96, 8);
  Rng rng_used(31), rng_ref(31);
  std::vector<Vertex> pos(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) pos[v] = v;
  step_walks(g, pos, rng_used, Laziness::half, nullptr, StepEngine::counter);
  (void)rng_ref();  // exactly the key draw
  EXPECT_EQ(rng_used(), rng_ref());
}

// Traced counter runs must not perturb the trajectory (the word stream is
// consumed identically with or without the traffic pointer).
TEST(StepKernel, CounterEngineTracingDoesNotChangeTrajectory) {
  for (const Graph& g : test_graphs()) {
    Rng rng_a(41), rng_b(41);
    std::vector<Vertex> pos_a(g.num_vertices());
    for (Vertex v = 0; v < g.num_vertices(); ++v) pos_a[v] = v;
    std::vector<Vertex> pos_b = pos_a;
    std::vector<std::uint64_t> traffic(g.num_edges(), 0);
    for (int round = 0; round < 10; ++round) {
      step_walks(g, pos_a, rng_a, Laziness::half, traffic.data(),
                 StepEngine::counter);
      step_walks(g, pos_b, rng_b, Laziness::half, nullptr,
                 StepEngine::counter);
    }
    EXPECT_EQ(pos_a, pos_b);
  }
}

// The counter engine still samples neighbors uniformly (hypercube degree 8,
// pow2 shift path over Philox words).
TEST(StepKernel, CounterEngineIsUniform) {
  const Graph g = gen::hypercube(8);
  const Vertex start = 17;
  const int draws = 32000;
  std::vector<int> hits(g.num_vertices(), 0);
  Rng rng(51);
  std::vector<Vertex> pos(1);
  for (int i = 0; i < draws; ++i) {
    pos[0] = start;
    step_walks(g, pos, rng, Laziness::none, nullptr, StepEngine::counter);
    ++hits[pos[0]];
  }
  const double expected = draws / 8.0;
  for (Vertex w : g.neighbors(start)) {
    EXPECT_NEAR(hits[w], expected, 5 * std::sqrt(expected)) << "w=" << w;
  }
}

// Whole-protocol determinism through the scenario grammar: engine=counter
// runs are reproducible per seed and structurally sane.
TEST(StepKernel, VisitExchangeCounterEngineDeterministic) {
  const Graph g = gen::circulant(96, 8);
  WalkOptions opts;
  opts.engine = StepEngine::counter;
  opts.trace.informed_curve = true;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const RunResult ra = run_visit_exchange(g, 0, seed, opts);
    const RunResult rb = run_visit_exchange(g, 0, seed, opts);
    EXPECT_EQ(ra.rounds, rb.rounds);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.informed_curve, rb.informed_curve);
    EXPECT_TRUE(ra.completed);
  }
}

TEST(StepKernel, DegreesAllPow2Flag) {
  EXPECT_TRUE(gen::hypercube(8).degrees_all_pow2());
  EXPECT_TRUE(gen::cycle(10).degrees_all_pow2());
  EXPECT_TRUE(gen::circulant(40, 8).degrees_all_pow2());
  EXPECT_TRUE(gen::star(8).degrees_all_pow2());  // center 8, leaves 1
  EXPECT_FALSE(gen::hypercube(5).degrees_all_pow2());        // degree 5
  EXPECT_FALSE(gen::star(6).degrees_all_pow2());             // center 6
  EXPECT_FALSE(gen::heavy_binary_tree(15).degrees_all_pow2());  // degree 3
}

}  // namespace
}  // namespace rumor

// DynamicBitset and StampSet unit tests.
#include <gtest/gtest.h>

#include "support/bitset.hpp"
#include "support/stamp_set.hpp"

namespace rumor {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.all());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DynamicBitset, SetResetTest) {
  DynamicBitset b(130);  // spans three words
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(129);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(129));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynamicBitset, FillRespectsSize) {
  DynamicBitset b(70, true);
  EXPECT_EQ(b.count(), 70u);
  EXPECT_TRUE(b.all());
}

TEST(DynamicBitset, FillThenClear) {
  DynamicBitset b(65);
  b.fill();
  EXPECT_TRUE(b.all());
  b.clear();
  EXPECT_TRUE(b.none());
}

TEST(DynamicBitset, FindFirstUnset) {
  DynamicBitset b(100);
  EXPECT_EQ(b.find_first_unset(), 0u);
  b.set(0);
  EXPECT_EQ(b.find_first_unset(), 1u);
  for (std::size_t i = 0; i < 100; ++i) b.set(i);
  EXPECT_EQ(b.find_first_unset(), 100u);  // == size when full
}

TEST(DynamicBitset, FindFirstUnsetAcrossWordBoundary) {
  DynamicBitset b(128);
  for (std::size_t i = 0; i < 64; ++i) b.set(i);
  EXPECT_EQ(b.find_first_unset(), 64u);
}

TEST(DynamicBitset, SubsetRelation) {
  DynamicBitset small(80), big(80);
  small.set(3);
  small.set(77);
  big.set(3);
  big.set(77);
  big.set(40);
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  EXPECT_TRUE(small.is_subset_of(small));
  DynamicBitset empty(80);
  EXPECT_TRUE(empty.is_subset_of(small));
}

TEST(DynamicBitset, EqualityComparesContent) {
  DynamicBitset a(64), b(64);
  EXPECT_EQ(a, b);
  a.set(10);
  EXPECT_NE(a, b);
  b.set(10);
  EXPECT_EQ(a, b);
}

TEST(StampSet, InsertAndContains) {
  StampSet s(10);
  EXPECT_FALSE(s.contains(3));
  s.insert(3);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
}

TEST(StampSet, AdvanceClearsInConstantTime) {
  StampSet s(5);
  s.insert(0);
  s.insert(4);
  s.advance();
  for (std::size_t i = 0; i < 5; ++i) EXPECT_FALSE(s.contains(i));
  s.insert(2);
  EXPECT_TRUE(s.contains(2));
}

TEST(StampSet, ManyEpochsStayCorrect) {
  StampSet s(3);
  for (int epoch = 0; epoch < 1000; ++epoch) {
    s.insert(epoch % 3);
    EXPECT_TRUE(s.contains(epoch % 3));
    EXPECT_FALSE(s.contains((epoch + 1) % 3));
    s.advance();
  }
}

}  // namespace
}  // namespace rumor

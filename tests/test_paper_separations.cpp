// Fast statistical versions of the paper's separation results (Lemmas 2-9)
// and regular-graph theorems (1, 23, 24, 25) at fixed test sizes. The bench
// binaries sweep sizes and fit growth laws; these tests pin the *ordering*
// and rough magnitudes so regressions in any protocol show up in ctest.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/meet_exchange.hpp"
#include "core/push.hpp"
#include "core/push_pull.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"
#include "support/stats.hpp"

namespace rumor {
namespace {

double mean_rounds(const Graph& g, Vertex source, int trials,
                   const std::function<RunResult(const Graph&, Vertex,
                                                 std::uint64_t)>& runner) {
  std::vector<double> samples;
  for (int seed = 0; seed < trials; ++seed) {
    const RunResult r = runner(g, source, static_cast<std::uint64_t>(seed));
    EXPECT_TRUE(r.completed);
    samples.push_back(static_cast<double>(r.rounds));
  }
  return Summary::of(samples).mean;
}

const auto kPush = [](const Graph& g, Vertex s, std::uint64_t seed) {
  return run_push(g, s, seed);
};
const auto kPpull = [](const Graph& g, Vertex s, std::uint64_t seed) {
  return run_push_pull(g, s, seed);
};
const auto kVisitx = [](const Graph& g, Vertex s, std::uint64_t seed) {
  return run_visit_exchange(g, s, seed);
};
const auto kMeetx = [](const Graph& g, Vertex s, std::uint64_t seed) {
  return run_meet_exchange(g, s, seed);
};

TEST(Lemma2Star, PushSlowOthersFast) {
  const Vertex leaves = 512;
  const Graph g = gen::star(leaves);
  const double log_n = std::log2(static_cast<double>(leaves));

  const double push = mean_rounds(g, 1, 10, kPush);
  const double ppull = mean_rounds(g, 1, 10, kPpull);
  const double visitx = mean_rounds(g, 1, 10, kVisitx);
  const double meetx = mean_rounds(g, 1, 10, kMeetx);

  EXPECT_GT(push, static_cast<double>(leaves));  // Ω(n log n) ≥ n here
  EXPECT_LE(ppull, 2.0);                         // Lemma 2(b)
  EXPECT_LT(visitx, 10 * log_n);                 // O(log n)
  EXPECT_LT(meetx, 20 * log_n);                  // O(log n), lazy walks
  EXPECT_GT(push, 20 * visitx);                  // the separation itself
}

TEST(Lemma3DoubleStar, PushPullSlowAgentsFast) {
  const Vertex leaves = 512;
  const Graph g = gen::double_star(leaves);
  const double log_n = std::log2(2.0 * leaves);

  const double ppull = mean_rounds(g, 2, 10, kPpull);
  const double visitx = mean_rounds(g, 2, 10, kVisitx);
  const double meetx = mean_rounds(g, 2, 10, kMeetx);

  EXPECT_GT(ppull, static_cast<double>(leaves) / 8);  // Ω(n)
  EXPECT_LT(visitx, 10 * log_n);
  EXPECT_LT(meetx, 25 * log_n);
  EXPECT_GT(ppull, 5 * visitx);
  EXPECT_GT(ppull, 3 * meetx);
}

TEST(Lemma4HeavyTree, PushFastVisitxSlowMeetxFastFromLeaf) {
  const Vertex n = 1023;
  const Graph g = gen::heavy_binary_tree(n);
  const Vertex leaf_source = n - 1;
  const double log_n = std::log2(static_cast<double>(n));

  const double push = mean_rounds(g, leaf_source, 10, kPush);
  const double visitx = mean_rounds(g, leaf_source, 10, kVisitx);
  const double meetx = mean_rounds(g, leaf_source, 10, kMeetx);

  EXPECT_LT(push, 9 * log_n);     // O(log n)
  EXPECT_GT(visitx, 2.5 * push);  // Ω(n): root starves for agent visits
  EXPECT_LT(meetx, 15 * log_n);   // Lemma 4(c): informed agents meet in
                                  // the leaf clique
  EXPECT_GT(visitx, 2 * meetx);
}

TEST(Lemma8Siamese, BothAgentProtocolsSlow) {
  const Vertex n = 1023;  // per copy; total 2n-1
  const Graph g = gen::siamese_heavy_tree(n);
  const Vertex leaf_source = n - 1;  // a leaf of copy 0
  const double log_n = std::log2(2.0 * n);

  const double push = mean_rounds(g, leaf_source, 8, kPush);
  const double visitx = mean_rounds(g, leaf_source, 8, kVisitx);
  const double meetx = mean_rounds(g, leaf_source, 8, kMeetx);

  EXPECT_LT(push, 9 * log_n);
  EXPECT_GT(visitx, 3 * push);  // Ω(n)
  EXPECT_GT(meetx, 3 * push);   // Ω(n): information must cross the root
}

TEST(Lemma9CycleStarsCliques, VisitxBeatsMeetx) {
  const Vertex k = 8;  // n = k + k^2 + k^3 = 584
  const Graph g = gen::cycle_stars_cliques(k);
  const Vertex clique_source = k + k * k;  // a clique vertex

  const double visitx = mean_rounds(g, clique_source, 8, kVisitx);
  const double meetx = mean_rounds(g, clique_source, 8, kMeetx);

  // Lemma 9: E[T_meetx] is a log-factor above E[T_visitx]; at this size we
  // require the ordering with some daylight.
  EXPECT_GT(meetx, 1.2 * visitx);
}

TEST(Theorem1, PushAndVisitxWithinConstantFactorOnRegularGraphs) {
  // d >= log2(n) regular families: the ratio push/visitx must stay in a
  // modest band (both directions of Theorem 1).
  struct Case {
    const char* name;
    Graph graph;
  };
  Rng rng(5);
  std::vector<Case> cases;
  cases.push_back({"random_regular(512,12)",
                   gen::random_regular(512, 12, rng)});
  cases.push_back({"hypercube(9)", gen::hypercube(9)});
  cases.push_back({"clique_ring(16,16)", gen::clique_ring(16, 16)});

  for (const auto& c : cases) {
    const double push = mean_rounds(c.graph, 0, 10, kPush);
    const double visitx = mean_rounds(c.graph, 0, 10, kVisitx);
    const double ratio = push / visitx;
    EXPECT_GT(ratio, 1.0 / 12.0) << c.name;
    EXPECT_LT(ratio, 12.0) << c.name;
  }
}

TEST(Theorem1, HoldsOnSlowMixingRegularFamily) {
  // The clique ring has Θ(groups) broadcast time for both protocols —
  // Theorem 1 is not a fast-graph artifact.
  const Graph g = gen::clique_ring(32, 8);
  const double push = mean_rounds(g, 0, 8, kPush);
  const double visitx = mean_rounds(g, 0, 8, kVisitx);
  EXPECT_GT(push, 32.0 / 2);  // ≥ groups/2 rounds: genuinely slow
  const double ratio = push / visitx;
  EXPECT_GT(ratio, 1.0 / 12.0);
  EXPECT_LT(ratio, 12.0);
}

TEST(Theorem23, VisitxWithinAdditiveLogOfMeetx) {
  Rng rng(7);
  const Graph g = gen::random_regular(512, 12, rng);
  const double visitx = mean_rounds(g, 0, 10, kVisitx);
  const double meetx = mean_rounds(g, 0, 10, kMeetx);
  const double log_n = std::log(512.0);
  EXPECT_LE(visitx, meetx + 6 * log_n);
}

TEST(Theorems24And25, LogarithmicLowerBoundsOnRegularGraphs) {
  // Even on the best-connected regular graph (complete), both agent-based
  // protocols need Ω(log n) rounds.
  const Vertex n = 2048;
  const Graph g = gen::complete(n);
  const double log_n = std::log2(static_cast<double>(n));
  std::vector<double> visitx_min, meetx_min;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    visitx_min.push_back(
        static_cast<double>(run_visit_exchange(g, 0, seed).rounds));
    meetx_min.push_back(
        static_cast<double>(run_meet_exchange(g, 0, seed).rounds));
  }
  EXPECT_GT(Summary::of(visitx_min).min, log_n / 4);
  EXPECT_GT(Summary::of(meetx_min).min, log_n / 4);
}

}  // namespace
}  // namespace rumor

// Structural validation of every graph generator: exact vertex/edge counts,
// degree sequences, connectivity, bipartiteness, regularity — the layout
// facts the experiments rely on (e.g. "the star center is vertex 0").
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace rumor {
namespace {

TEST(GenComplete, Structure) {
  const Graph g = gen::complete(6);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 5u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(is_bipartite(g));
  EXPECT_EQ(diameter_exact(g), 1u);
}

TEST(GenPath, Structure) {
  const Graph g = gen::path(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(diameter_exact(g), 4u);
}

TEST(GenCycle, EvenIsBipartiteOddIsNot) {
  const Graph even = gen::cycle(8);
  EXPECT_EQ(even.num_edges(), 8u);
  EXPECT_TRUE(even.is_regular());
  EXPECT_TRUE(is_bipartite(even));
  EXPECT_EQ(diameter_exact(even), 4u);
  const Graph odd = gen::cycle(7);
  EXPECT_FALSE(is_bipartite(odd));
  EXPECT_EQ(diameter_exact(odd), 3u);
}

TEST(GenGrid, Structure) {
  const Graph g = gen::grid2d(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 4u * 2);  // 17
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(g.degree(0), 2u);       // corner
  EXPECT_EQ(diameter_exact(g), 5u);  // (3-1)+(4-1)
}

TEST(GenTorus, FourRegular) {
  const Graph g = gen::torus2d(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 40u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 4u);
  EXPECT_TRUE(is_connected(g));
}

TEST(GenBarbell, BridgeStructure) {
  const Graph g = gen::barbell(4);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 2u * 6 + 1);
  EXPECT_TRUE(g.has_edge(3, 4));  // the bridge
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(3), 4u);  // clique + bridge
  EXPECT_EQ(g.degree(0), 3u);
}

TEST(GenStar, PaperFig1a) {
  const Graph g = gen::star(10);
  EXPECT_EQ(g.num_vertices(), 11u);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_EQ(g.degree(0), 10u);  // center is vertex 0
  for (Vertex leaf = 1; leaf <= 10; ++leaf) EXPECT_EQ(g.degree(leaf), 1u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));  // meet-exchange needs lazy walks here
  EXPECT_EQ(diameter_exact(g), 2u);
}

TEST(GenDoubleStar, PaperFig1b) {
  const Graph g = gen::double_star(6);
  EXPECT_EQ(g.num_vertices(), 14u);
  EXPECT_EQ(g.num_edges(), 13u);
  EXPECT_TRUE(g.has_edge(0, 1));  // the center-center bridge
  EXPECT_EQ(g.degree(0), 7u);     // 6 leaves + bridge
  EXPECT_EQ(g.degree(1), 7u);
  for (Vertex leaf = 2; leaf < 14; ++leaf) EXPECT_EQ(g.degree(leaf), 1u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(diameter_exact(g), 3u);
}

TEST(GenBinaryTree, HeapLayout) {
  const Graph g = gen::balanced_binary_tree(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(2, 6));
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));
}

TEST(GenHeavyTree, PaperFig1c) {
  // n = 15: leaves are heap positions [7, 15) => 8 leaves, clique K8.
  const Graph g = gen::heavy_binary_tree(15);
  EXPECT_EQ(g.num_vertices(), 15u);
  EXPECT_EQ(g.num_edges(), 14u + 8u * 7 / 2);
  EXPECT_EQ(g.degree(0), 2u);  // root keeps tree degree
  // A leaf: 7 clique neighbors + 1 parent.
  EXPECT_EQ(g.degree(7), 8u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(is_bipartite(g));
  // Most volume on the leaves: leaf-clique degrees dominate.
  EXPECT_GT(degree_stats(g).max, 2u);
}

TEST(GenSiamese, PaperFig1d) {
  // Two copies of B_15 sharing the root: 2*15-1 vertices.
  const Graph g = gen::siamese_heavy_tree(15);
  EXPECT_EQ(g.num_vertices(), 29u);
  EXPECT_EQ(g.num_edges(), 2u * (14 + 28));
  EXPECT_EQ(g.degree(0), 4u);  // merged root has both copies' children
  EXPECT_TRUE(is_connected(g));
  // Copy layout: heap position p of copy c sits at p + c*(n-1).
  EXPECT_TRUE(g.has_edge(0, 1));        // copy 0 child
  EXPECT_TRUE(g.has_edge(0, 1 + 14));   // copy 1 child
  EXPECT_FALSE(g.has_edge(1, 1 + 14));  // copies only meet at the root
}

TEST(GenCycleStarsCliques, PaperFig1e) {
  const Vertex k = 4;
  const Graph g = gen::cycle_stars_cliques(k);
  EXPECT_EQ(g.num_vertices(), k + k * k + k * k * k);
  // Edges: ring k, spokes k^2, cliques k^2 * C(k+1,2).
  EXPECT_EQ(g.num_edges(), k + k * k + k * k * (k + 1) * k / 2);
  EXPECT_TRUE(is_connected(g));
  // Hub degree k+2; leaf degree k+1; clique vertex degree k: almost regular.
  EXPECT_EQ(g.degree(0), k + 2);
  EXPECT_EQ(g.degree(k), k + 1);  // first leaf
  EXPECT_EQ(g.degree(k + k * k), k);  // first clique vertex
  const auto stats = degree_stats(g);
  EXPECT_LE(stats.max - stats.min, 2u);
}

TEST(GenStarOfCliques, Structure) {
  const Graph g = gen::star_of_cliques(3, 4);
  EXPECT_EQ(g.num_vertices(), 13u);
  EXPECT_EQ(g.num_edges(), 3u * 6 + 3);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_TRUE(is_connected(g));
}

TEST(GenHypercube, Structure) {
  const Graph g = gen::hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);  // n * dim / 2
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 4u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(diameter_exact(g), 4u);
}

TEST(GenCirculant, Structure) {
  const Graph g = gen::circulant(12, 3);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 36u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 6u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(11, 2));  // wraps around
  EXPECT_FALSE(g.has_edge(0, 4));
}

TEST(GenCliqueRing, ExactlyRegular) {
  const Graph g = gen::clique_ring(5, 4);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 5u);  // k-1 clique + 2 matching
  EXPECT_TRUE(is_connected(g));
  EXPECT_FALSE(is_bipartite(g));
}

TEST(GenCliquePath, EndGroupsLighter) {
  const Graph g = gen::clique_path(4, 3);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_FALSE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 3u);   // end groups: k-1+1
  EXPECT_EQ(g.max_degree(), 4u);   // interior: k-1+2
  EXPECT_TRUE(is_connected(g));
}

TEST(GenRandomRegular, SimpleRegularConnected) {
  Rng rng(99);
  for (std::uint32_t d : {3u, 8u, 16u}) {
    const Graph g = gen::random_regular(200, d, rng);
    EXPECT_EQ(g.num_vertices(), 200u);
    EXPECT_TRUE(g.is_regular()) << "d=" << d;
    EXPECT_EQ(g.min_degree(), d);
    EXPECT_EQ(g.num_edges(), 200u * d / 2);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(GenRandomRegular, OddDegreeEvenN) {
  Rng rng(7);
  const Graph g = gen::random_regular(100, 5, rng);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 5u);
}

TEST(GenRandomRegular, DifferentSeedsDifferentGraphs) {
  Rng rng1(1), rng2(2);
  const Graph a = gen::random_regular(64, 4, rng1);
  const Graph b = gen::random_regular(64, 4, rng2);
  bool identical = true;
  for (Vertex v = 0; v < 64 && identical; ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    identical = std::equal(na.begin(), na.end(), nb.begin(), nb.end());
  }
  EXPECT_FALSE(identical);
}

TEST(GenErdosRenyi, ConnectedWithPlausibleEdgeCount) {
  Rng rng(123);
  const Vertex n = 300;
  const double p = 0.05;
  const Graph g = gen::erdos_renyi_connected(n, p, rng);
  EXPECT_EQ(g.num_vertices(), n);
  EXPECT_TRUE(is_connected(g));
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              6 * std::sqrt(expected));
}

TEST(GenErdosRenyi, EdgeProbabilityCalibrated) {
  // Mean edge count over several draws should track p closely (tests the
  // geometric-skip sampling).
  Rng rng(55);
  const Vertex n = 200;
  const double p = 0.1;
  double total = 0;
  const int draws = 30;
  for (int i = 0; i < draws; ++i) {
    total += static_cast<double>(gen::erdos_renyi_connected(n, p, rng).num_edges());
  }
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(total / draws, expected, 0.03 * expected);
}

}  // namespace
}  // namespace rumor

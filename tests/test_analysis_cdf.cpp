// Empirical CDF and stretched-dominance tests.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/cdf.hpp"
#include "core/push.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"

namespace rumor {
namespace {

TEST(EmpiricalCdf, PointwiseValues) {
  const std::vector<double> v{1, 2, 2, 3};
  EmpiricalCdf cdf(v);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, Quantiles) {
  const std::vector<double> v{10, 20, 30, 40};
  EmpiricalCdf cdf(v);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 40.0);
  // Smallest q with P[X <= q] >= 0.26 is 20 (P[X <= 20] = 0.5).
  EXPECT_DOUBLE_EQ(cdf.quantile(0.26), 20.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.51), 30.0);
}

TEST(Dominance, IdenticalSamplesDominateAtStretchOne) {
  const std::vector<double> v{3, 1, 4, 1, 5};
  EmpiricalCdf a(v), b(v);
  EXPECT_TRUE(dominates_with_stretch(a, b, 1.0));
}

TEST(Dominance, ShiftedDistributionNeedsStretch) {
  // A = 2*B pointwise: stretch 2 works, stretch 1.9 fails somewhere.
  std::vector<double> base, doubled;
  for (int i = 1; i <= 50; ++i) {
    base.push_back(i);
    doubled.push_back(2.0 * i);
  }
  EmpiricalCdf a(doubled), b(base);
  EXPECT_TRUE(dominates_with_stretch(a, b, 2.0));
  EXPECT_FALSE(dominates_with_stretch(a, b, 1.9));
  EXPECT_NEAR(minimal_stretch(a, b), 2.0, 0.01);
}

TEST(Dominance, SlackForgivesSmallViolations) {
  const std::vector<double> a_samples{10, 10, 10, 10};
  const std::vector<double> b_samples{9, 10, 10, 10};  // B slightly faster
  EmpiricalCdf a(a_samples), b(b_samples);
  EXPECT_FALSE(dominates_with_stretch(a, b, 1.0, 0.0, 0.0));
  EXPECT_TRUE(dominates_with_stretch(a, b, 1.0, 0.0, 0.3));
}

TEST(Dominance, ShiftParameterActsAdditively) {
  const std::vector<double> a_samples{12, 13, 14};
  const std::vector<double> b_samples{10, 11, 12};
  EmpiricalCdf a(a_samples), b(b_samples);
  EXPECT_FALSE(dominates_with_stretch(a, b, 1.0, 0.0));
  EXPECT_TRUE(dominates_with_stretch(a, b, 1.0, 2.0));
}

TEST(Theorem10Distributional, PushDominatedByStretchedVisitxOnRegular) {
  // The theorem's actual statement: P[T_push <= c k] >= P[T_visitx <= k]
  // - n^-lambda. Sampled over 60 seeds with a small slack for Monte-Carlo
  // noise, a modest c must suffice (and symmetric for Theorem 19).
  Rng grng(3);
  const Graph g = gen::random_regular(512, 12, grng);
  std::vector<double> push_t, visitx_t;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    push_t.push_back(static_cast<double>(run_push(g, 0, seed).rounds));
    visitx_t.push_back(
        static_cast<double>(run_visit_exchange(g, 0, seed + 500).rounds));
  }
  EmpiricalCdf push_cdf(push_t), visitx_cdf(visitx_t);
  EXPECT_LE(minimal_stretch(push_cdf, visitx_cdf, 0.1), 4.0);   // Thm 10
  EXPECT_LE(minimal_stretch(visitx_cdf, push_cdf, 0.1), 4.0);   // Thm 19
}

}  // namespace
}  // namespace rumor

// Cover/hitting/meeting time estimators vs. known closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "support/stats.hpp"
#include "walk/walk_stats.hpp"

namespace rumor {
namespace {

TEST(CoverTime, CompleteGraphMatchesCouponCollector) {
  // Cover time of K_n is (n-1) * H_{n-1} (coupon collector on n-1 others).
  const Vertex n = 32;
  const Graph g = gen::complete(n);
  Rng rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) {
    samples.push_back(static_cast<double>(
        cover_time_once(g, 0, rng, Laziness::none, 1 << 20)));
  }
  double harmonic = 0;
  for (Vertex k = 1; k < n; ++k) harmonic += 1.0 / k;
  const double expected = (n - 1) * harmonic;
  const Summary s = Summary::of(samples);
  EXPECT_NEAR(s.mean, expected, 0.12 * expected);
}

TEST(CoverTime, CycleMatchesQuadraticForm) {
  // Cover time of the n-cycle is exactly n(n-1)/2.
  const Vertex n = 24;
  const Graph g = gen::cycle(n);
  Rng rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 400; ++i) {
    samples.push_back(static_cast<double>(
        cover_time_once(g, 0, rng, Laziness::none, 1 << 22)));
  }
  const double expected = n * (n - 1) / 2.0;
  EXPECT_NEAR(Summary::of(samples).mean, expected, 0.12 * expected);
}

TEST(CoverTime, CutoffReported) {
  const Graph g = gen::cycle(64);
  Rng rng(3);
  EXPECT_EQ(cover_time_once(g, 0, rng, Laziness::none, 10), 10u);
}

TEST(HittingTime, CompleteGraphGeometric) {
  // Hitting time u->v on K_n is geometric with mean n-1.
  const Vertex n = 20;
  const Graph g = gen::complete(n);
  Rng rng(4);
  std::vector<double> samples;
  for (int i = 0; i < 3000; ++i) {
    samples.push_back(static_cast<double>(
        hitting_time_once(g, 0, 5, rng, Laziness::none, 1 << 20)));
  }
  EXPECT_NEAR(Summary::of(samples).mean, n - 1.0, 0.08 * (n - 1));
}

TEST(HittingTime, SameVertexIsZero) {
  const Graph g = gen::cycle(8);
  Rng rng(5);
  EXPECT_EQ(hitting_time_once(g, 3, 3, rng, Laziness::none, 100), 0u);
}

TEST(HittingTime, LazyDoublesMean) {
  const Vertex n = 16;
  const Graph g = gen::complete(n);
  Rng rng(6);
  std::vector<double> lazy_samples;
  for (int i = 0; i < 3000; ++i) {
    lazy_samples.push_back(static_cast<double>(
        hitting_time_once(g, 0, 5, rng, Laziness::half, 1 << 20)));
  }
  // Lazy walk makes real progress half the time: mean 2(n-1).
  EXPECT_NEAR(Summary::of(lazy_samples).mean, 2.0 * (n - 1),
              0.1 * 2 * (n - 1));
}

TEST(MeetingTime, SameStartIsZero) {
  const Graph g = gen::cycle(8);
  Rng rng(7);
  EXPECT_EQ(meeting_time_once(g, 2, 2, rng, Laziness::none, 100), 0u);
}

TEST(MeetingTime, CompleteGraphMean) {
  // Two walks on K_n land on the same vertex with probability ~1/(n-1) per
  // round, so the meeting time is approximately geometric with mean ~n-1.
  const Vertex n = 20;
  const Graph g = gen::complete(n);
  Rng rng(8);
  std::vector<double> samples;
  for (int i = 0; i < 3000; ++i) {
    samples.push_back(static_cast<double>(
        meeting_time_once(g, 0, 5, rng, Laziness::none, 1 << 20)));
  }
  EXPECT_NEAR(Summary::of(samples).mean, n - 1.0, 0.15 * (n - 1));
}

TEST(MeetingTime, BipartiteParityNeverMeets) {
  // On an even cycle, two non-lazy walks at odd distance keep opposite
  // parity forever: they can never meet.
  const Graph g = gen::cycle(8);
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(meeting_time_once(g, 0, 1, rng, Laziness::none, 2000), 2000u);
  }
  // Lazy walks break parity and do meet.
  std::size_t met = 0;
  for (int i = 0; i < 20; ++i) {
    if (meeting_time_once(g, 0, 1, rng, Laziness::half, 20000) < 20000) {
      ++met;
    }
  }
  EXPECT_EQ(met, 20u);
}

}  // namespace
}  // namespace rumor

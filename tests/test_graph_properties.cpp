// Graph property algorithms: BFS, connectivity, bipartiteness, diameter.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace rumor {
namespace {

TEST(BfsDistances, PathDistances) {
  const Graph g = gen::path(6);
  const auto dist = bfs_distances(g, 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
  const auto dist2 = bfs_distances(g, 3);
  EXPECT_EQ(dist2[0], 3u);
  EXPECT_EQ(dist2[5], 2u);
}

TEST(BfsDistances, UnreachableIsSentinel) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 0xFFFFFFFFu);
  EXPECT_FALSE(is_connected(g));
}

TEST(IsBipartite, DisconnectedComponentsChecked) {
  GraphBuilder b(6);
  b.add_edge(0, 1);  // component 1: edge (bipartite)
  b.add_edge(2, 3);  // component 2: triangle (odd cycle)
  b.add_edge(3, 4);
  b.add_edge(4, 2);
  const Graph g = b.build();
  EXPECT_FALSE(is_bipartite(g));
}

TEST(Eccentricity, CycleCenterless) {
  const Graph g = gen::cycle(10);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(eccentricity(g, v), 5u);
}

TEST(DiameterExact, KnownValues) {
  EXPECT_EQ(diameter_exact(gen::path(10)), 9u);
  EXPECT_EQ(diameter_exact(gen::complete(10)), 1u);
  EXPECT_EQ(diameter_exact(gen::star(10)), 2u);
  EXPECT_EQ(diameter_exact(gen::hypercube(5)), 5u);
}

TEST(DiameterLowerBound, NeverExceedsExactAndUsuallyMatchesOnTrees) {
  const Graph g = gen::balanced_binary_tree(63);
  const std::uint32_t exact = diameter_exact(g);
  const std::uint32_t lb = diameter_lower_bound(g, 4, 1);
  EXPECT_LE(lb, exact);
  // Double sweep is exact on trees.
  EXPECT_EQ(lb, exact);
}

TEST(DegreeStats, Star) {
  const auto s = degree_stats(gen::star(9));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 9u);
  EXPECT_NEAR(s.mean, 18.0 / 10.0, 1e-12);
}

}  // namespace
}  // namespace rumor

// Graph property algorithms: BFS, connectivity, bipartiteness, diameter.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace rumor {
namespace {

TEST(BfsDistances, PathDistances) {
  const Graph g = gen::path(6);
  const auto dist = bfs_distances(g, 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(dist[v], v);
  const auto dist2 = bfs_distances(g, 3);
  EXPECT_EQ(dist2[0], 3u);
  EXPECT_EQ(dist2[5], 2u);
}

TEST(BfsDistances, UnreachableIsSentinel) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 0xFFFFFFFFu);
  EXPECT_FALSE(is_connected(g));
}

TEST(IsBipartite, DisconnectedComponentsChecked) {
  GraphBuilder b(6);
  b.add_edge(0, 1);  // component 1: edge (bipartite)
  b.add_edge(2, 3);  // component 2: triangle (odd cycle)
  b.add_edge(3, 4);
  b.add_edge(4, 2);
  const Graph g = b.build();
  EXPECT_FALSE(is_bipartite(g));
}

TEST(Eccentricity, CycleCenterless) {
  const Graph g = gen::cycle(10);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(eccentricity(g, v), 5u);
}

TEST(DiameterExact, KnownValues) {
  EXPECT_EQ(diameter_exact(gen::path(10)), 9u);
  EXPECT_EQ(diameter_exact(gen::complete(10)), 1u);
  EXPECT_EQ(diameter_exact(gen::star(10)), 2u);
  EXPECT_EQ(diameter_exact(gen::hypercube(5)), 5u);
}

TEST(DiameterLowerBound, NeverExceedsExactAndUsuallyMatchesOnTrees) {
  const Graph g = gen::balanced_binary_tree(63);
  const std::uint32_t exact = diameter_exact(g);
  const std::uint32_t lb = diameter_lower_bound(g, 4, 1);
  EXPECT_LE(lb, exact);
  // Double sweep is exact on trees.
  EXPECT_EQ(lb, exact);
}

TEST(Connectivity, EmptyAndSingleVertexGuards) {
  // The empty graph must not BFS from a nonexistent vertex 0: it reports
  // NOT connected (no component exists) and vacuously bipartite.
  const Graph empty(0, {});
  EXPECT_FALSE(is_connected(empty));
  EXPECT_TRUE(is_bipartite(empty));
  EXPECT_EQ(empty.min_degree(), 0u);
  // A single isolated vertex is trivially connected and bipartite.
  const Graph single(1, {});
  EXPECT_TRUE(is_connected(single));
  EXPECT_TRUE(is_bipartite(single));
  // Two isolated vertices: bipartite but not connected.
  const Graph two(2, {});
  EXPECT_FALSE(is_connected(two));
  EXPECT_TRUE(is_bipartite(two));
}

TEST(BfsDistances, RejectsSourceOnEmptyGraph) {
  const Graph empty(0, {});
  EXPECT_DEATH((void)bfs_distances(empty, 0), "precondition");
}

TEST(GraphProperties, MatchesFreeFunctionsAcrossFamilies) {
  std::vector<Graph> graphs;
  graphs.push_back(gen::cycle(10));   // even cycle: bipartite, regular
  graphs.push_back(gen::cycle(9));    // odd cycle: not bipartite
  graphs.push_back(gen::star(8));     // bipartite, irregular
  graphs.push_back(gen::complete(5)); // not bipartite
  graphs.push_back(gen::hypercube(4));  // bipartite, pow2-regular
  for (const Graph& g : graphs) {
    const GraphProperties& p = g.properties();
    EXPECT_EQ(p.connected, is_connected(g));
    EXPECT_EQ(p.bipartite, is_bipartite(g));
    EXPECT_EQ(p.regular, g.is_regular());
    EXPECT_EQ(p.degrees_all_pow2, g.degrees_all_pow2());
  }
}

TEST(GraphProperties, DisconnectedComponentsAllCheckedForBipartiteness) {
  GraphBuilder b(6);
  b.add_edge(0, 1);  // component 1: bipartite edge
  b.add_edge(2, 3);  // component 2: triangle (odd cycle)
  b.add_edge(3, 4);
  b.add_edge(4, 2);
  const Graph g = b.build();
  EXPECT_FALSE(g.properties().bipartite);
  EXPECT_FALSE(g.properties().connected);  // vertex 5 is isolated
}

TEST(DegreeStats, Star) {
  const auto s = degree_stats(gen::star(9));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 9u);
  EXPECT_NEAR(s.mean, 18.0 / 10.0, 1e-12);
}

}  // namespace
}  // namespace rumor

// Shared handles to the test binary's instrumented global allocator.
//
// The replacement operator new/delete live in test_trial_arena.cpp (a
// binary gets exactly one set); these counters let any test file in the
// same binary measure a window of heap activity. Counting is off by
// default so the rest of the suite is unaffected.
#pragma once

#include <atomic>
#include <cstddef>

namespace rumor::test_alloc {

extern std::atomic<bool> g_count;
extern std::atomic<std::size_t> g_allocations;
extern std::atomic<std::size_t> g_bytes;

// RAII window: zero the counters, count for the scope.
struct CountScope {
  CountScope() {
    g_allocations.store(0);
    g_bytes.store(0);
    g_count.store(true);
  }
  ~CountScope() { g_count.store(false); }
  CountScope(const CountScope&) = delete;
  CountScope& operator=(const CountScope&) = delete;
};

}  // namespace rumor::test_alloc

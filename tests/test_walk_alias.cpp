// Alias sampler correctness: exactness on degenerate cases and chi-squared
// style frequency bands on general weights.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "walk/alias.hpp"

namespace rumor {
namespace {

TEST(Alias, SingleOutcome) {
  const std::vector<double> w{5.0};
  AliasSampler s(w);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.sample(rng), 0u);
}

TEST(Alias, ZeroWeightNeverSampled) {
  const std::vector<double> w{1.0, 0.0, 1.0};
  AliasSampler s(w);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(s.sample(rng), 1u);
}

TEST(Alias, UniformWeights) {
  const std::vector<double> w(8, 3.0);
  AliasSampler s(w);
  Rng rng(3);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[s.sample(rng)];
  const double expected = kDraws / 8.0;
  for (int c : counts) EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
}

TEST(Alias, SkewedWeightsMatchProbabilities) {
  const std::vector<double> w{1.0, 2.0, 3.0, 4.0};  // sum 10
  AliasSampler s(w);
  Rng rng(4);
  std::vector<int> counts(4, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[s.sample(rng)];
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double expected = kDraws * w[i] / 10.0;
    EXPECT_NEAR(counts[i], expected, 5 * std::sqrt(expected)) << "i=" << i;
  }
}

TEST(Alias, ExtremeSkew) {
  // 999:1 ratio — the rare outcome must still appear at its rate.
  const std::vector<double> w{999.0, 1.0};
  AliasSampler s(w);
  Rng rng(5);
  int rare = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) rare += (s.sample(rng) == 1) ? 1 : 0;
  EXPECT_NEAR(rare, kDraws / 1000.0, 5 * std::sqrt(kDraws / 1000.0));
}

TEST(Alias, DegreeDistributionOfStar) {
  // The stationary distribution on a star: center has deg n, leaves 1.
  const int leaves = 9;
  std::vector<double> w(leaves + 1, 1.0);
  w[0] = leaves;
  AliasSampler s(w);
  Rng rng(6);
  int at_center = 0;
  constexpr int kDraws = 90000;
  for (int i = 0; i < kDraws; ++i) at_center += (s.sample(rng) == 0) ? 1 : 0;
  EXPECT_NEAR(at_center, kDraws / 2.0, 5 * std::sqrt(kDraws / 2.0));
}

}  // namespace
}  // namespace rumor

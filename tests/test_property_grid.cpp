// Property grid: universal invariants checked for every protocol on every
// graph family (parameterized sweep — one TEST_P instance per combination).
//
// Invariants:
//   * the run completes within the default cutoff on connected graphs,
//   * broadcast time is at least the source eccentricity for vertex-based
//     protocols (information travels at most one hop per round),
//   * the same seed reproduces the same broadcast time,
//   * inform-round traces are consistent (source at 0, max = total rounds),
//   * the informed curve is monotone and ends at n.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/hybrid.hpp"
#include "core/meet_exchange.hpp"
#include "core/push.hpp"
#include "core/push_pull.hpp"
#include "core/visit_exchange.hpp"
#include "experiments/specs.hpp"
#include "graph/properties.hpp"

namespace rumor {
namespace {

struct GridCase {
  const char* name;
  GraphSpec spec;
  Vertex source;
};

const GridCase kGraphs[] = {
    {"star", {Family::star, 48}, 1},
    {"double_star", {Family::double_star, 24}, 2},
    {"heavy_tree", {Family::heavy_tree, 63}, 62},
    {"siamese", {Family::siamese, 31}, 30},
    {"csc", {Family::cycle_stars_cliques, 4}, 20},
    {"complete", {Family::complete, 48}, 0},
    {"cycle", {Family::cycle, 33}, 0},
    {"path", {Family::path, 24}, 0},
    {"grid", {Family::grid, 6, 6}, 0},
    {"torus", {Family::torus, 5, 5}, 0},
    {"hypercube", {Family::hypercube, 6}, 0},
    {"circulant", {Family::circulant, 40, 4}, 0},
    {"clique_ring", {Family::clique_ring, 5, 5}, 0},
    {"clique_path", {Family::clique_path, 5, 5}, 0},
    {"random_regular", {Family::random_regular, 48, 6}, 0},
    {"erdos_renyi", {Family::erdos_renyi, 48, 0, 0.2}, 0},
    {"barbell", {Family::barbell, 10}, 0},
    {"star_of_cliques", {Family::star_of_cliques, 4, 5}, 0},
    {"binary_tree", {Family::binary_tree, 31}, 0},
};

const Protocol kProtocols[] = {Protocol::push, Protocol::push_pull,
                               Protocol::visit_exchange,
                               Protocol::meet_exchange, Protocol::hybrid};

class ProtocolGridTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, Protocol>> {
 protected:
  static const GridCase& graph_case() {
    return kGraphs[std::get<0>(GetParam())];
  }
  static Protocol protocol() { return std::get<1>(GetParam()); }
};

TEST_P(ProtocolGridTest, CompletesAndIsDeterministic) {
  Rng rng(42);
  const Graph g = graph_case().spec.make(rng);
  ProtocolSpec spec = default_spec(protocol());
  const Vertex source = graph_case().source;

  const TrialResult first = run_protocol(g, spec, source, 1234);
  EXPECT_TRUE(first.completed)
      << graph_case().name << " / " << protocol_name(protocol());
  const TrialResult again = run_protocol(g, spec, source, 1234);
  EXPECT_EQ(first.rounds, again.rounds);

  // Vertex-based protocols cannot beat the source eccentricity.
  if (protocol() == Protocol::push || protocol() == Protocol::push_pull) {
    EXPECT_GE(first.rounds, static_cast<double>(eccentricity(g, source)));
  }
}

TEST_P(ProtocolGridTest, TraceInvariants) {
  Rng rng(43);
  const Graph g = graph_case().spec.make(rng);
  const Vertex source = graph_case().source;
  const Vertex n = g.num_vertices();

  RunResult r;
  TraceOptions trace;
  trace.informed_curve = true;
  trace.inform_rounds = true;
  switch (protocol()) {
    case Protocol::push: {
      PushOptions o;
      o.trace = trace;
      r = run_push(g, source, 7, o);
      break;
    }
    case Protocol::push_pull: {
      PushPullOptions o;
      o.trace = trace;
      r = run_push_pull(g, source, 7, o);
      break;
    }
    case Protocol::visit_exchange: {
      WalkOptions o;
      o.trace = trace;
      r = run_visit_exchange(g, source, 7, o);
      break;
    }
    case Protocol::meet_exchange: {
      WalkOptions o = MeetExchangeProcess::default_options();
      o.trace = trace;
      r = run_meet_exchange(g, source, 7, o);
      break;
    }
    case Protocol::hybrid: {
      WalkOptions o;
      o.trace = trace;
      r = run_hybrid(g, source, 7, o);
      break;
    }
  }
  ASSERT_TRUE(r.completed)
      << graph_case().name << " / " << protocol_name(protocol());

  // Informed curve: monotone, ends at the full population.
  ASSERT_EQ(r.informed_curve.size(), r.rounds + 1);
  for (std::size_t i = 1; i < r.informed_curve.size(); ++i) {
    EXPECT_GE(r.informed_curve[i], r.informed_curve[i - 1]);
  }
  const bool agent_based = protocol() == Protocol::meet_exchange;
  if (!agent_based) {
    EXPECT_EQ(r.informed_curve.back(), n);
    // Vertex inform rounds: source at 0, everyone informed, max == rounds.
    ASSERT_EQ(r.vertex_inform_round.size(), n);
    EXPECT_EQ(r.vertex_inform_round[source], 0u);
    std::uint32_t max_round = 0;
    for (std::uint32_t t : r.vertex_inform_round) {
      ASSERT_NE(t, kNeverInformed);
      max_round = std::max(max_round, t);
    }
    EXPECT_EQ(max_round, r.rounds);
  }
}

std::string grid_name(
    const ::testing::TestParamInfo<std::tuple<std::size_t, Protocol>>& info) {
  std::string p = protocol_name(std::get<1>(info.param));
  for (char& c : p) {
    if (c == '-') c = '_';
  }
  return std::string(kGraphs[std::get<0>(info.param)].name) + "_" + p;
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, ProtocolGridTest,
    ::testing::Combine(::testing::Range<std::size_t>(0, std::size(kGraphs)),
                       ::testing::ValuesIn(kProtocols)),
    grid_name);

}  // namespace
}  // namespace rumor

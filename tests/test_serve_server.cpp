// rumor_serve end-to-end: protocol grammar, in-process daemon over a Unix
// socket (SUBMIT validation, RESULTS streaming byte-identical to one-shot
// runs, STATUS/STATS, CANCEL, per-client BUSY backpressure, two-client
// fair-share forward progress), and the resume contract — abandon() (the
// simulated SIGKILL) at an arbitrary point, restart on the same journal,
// and the collected CSV rows equal a one-shot run byte for byte, even
// after hand-tearing the journal tail.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "experiments/report.hpp"
#include "experiments/scenario.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace rumor::serve {
namespace {

namespace fs = std::filesystem;

// ---- Protocol grammar (pure parsing, no daemon) ------------------------

TEST(ServeProtocol, AddressGrammarRoundTrips) {
  std::string error;
  const auto unix_addr = parse_address("unix:/tmp/x.sock", &error);
  ASSERT_TRUE(unix_addr) << error;
  EXPECT_EQ(unix_addr->kind, Address::Kind::unix_socket);
  EXPECT_EQ(unix_addr->path, "/tmp/x.sock");
  EXPECT_EQ(unix_addr->text(), "unix:/tmp/x.sock");

  const auto host_port = parse_address("10.0.0.5:9000", &error);
  ASSERT_TRUE(host_port) << error;
  EXPECT_EQ(host_port->kind, Address::Kind::tcp);
  EXPECT_EQ(host_port->host, "10.0.0.5");
  EXPECT_EQ(host_port->port, 9000);

  const auto bare_port = parse_address("8123", &error);
  ASSERT_TRUE(bare_port) << error;
  EXPECT_EQ(bare_port->host, "127.0.0.1");
  EXPECT_EQ(bare_port->port, 8123);

  EXPECT_FALSE(parse_address("", &error));
  EXPECT_FALSE(parse_address("unix:", &error));
  EXPECT_FALSE(parse_address("host:notaport", &error));
  EXPECT_FALSE(parse_address("1.2.3.4:99999", &error));
}

TEST(ServeProtocol, RequestGrammarAcceptsTheVerbSetAndRejectsJunk) {
  std::string error;
  const auto hello = parse_request("HELLO alice", &error);
  ASSERT_TRUE(hello) << error;
  EXPECT_EQ(hello->kind, Request::Kind::hello);
  EXPECT_EQ(hello->name, "alice");

  const auto submit = parse_request("SUBMIT 3", &error);
  ASSERT_TRUE(submit) << error;
  EXPECT_EQ(submit->kind, Request::Kind::submit);
  EXPECT_EQ(submit->lines, 3u);

  const auto status = parse_request("STATUS 17", &error);
  ASSERT_TRUE(status) << error;
  EXPECT_EQ(status->job, 17u);
  EXPECT_TRUE(parse_request("CANCEL 1", &error));
  EXPECT_TRUE(parse_request("RESULTS 1", &error));
  EXPECT_TRUE(parse_request("STATS", &error));
  EXPECT_TRUE(parse_request("QUIT", &error));

  EXPECT_FALSE(parse_request("", &error));
  EXPECT_FALSE(parse_request("FROBNICATE 1", &error));
  EXPECT_FALSE(parse_request("STATUS 0", &error));       // job ids start at 1
  EXPECT_FALSE(parse_request("STATUS banana", &error));
  EXPECT_FALSE(parse_request("SUBMIT 0", &error));
  EXPECT_FALSE(parse_request("SUBMIT 999999", &error));  // > kMaxSubmitLines
}

TEST(ServeProtocol, SanitizeCollapsesFramingBytes) {
  EXPECT_EQ(sanitize_reply_text("  line one\r\nline two \n"),
            "line one  line two");
}

// ---- In-process daemon fixture -----------------------------------------

// Reference rows: the one-shot runner over the same scenario text. The
// serve path must reproduce these bytes exactly.
std::vector<std::string> one_shot_rows(const std::string& text) {
  std::istringstream in(text);
  std::string error;
  const auto specs = parse_scenario_stream(in, &error);
  EXPECT_TRUE(specs) << error;
  const auto results = run_scenarios(*specs, &error);
  EXPECT_TRUE(results) << error;
  std::vector<std::string> rows;
  if (results) {
    for (const ScenarioResult& r : *results) {
      rows.push_back(scenario_csv_line(r));
    }
  }
  return rows;
}

class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("rumor_serve_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    journal_ = (dir_ / "serve.journal").string();
    sock_ = (dir_ / "s").string();
  }
  void TearDown() override {
    stop_server(/*graceful=*/true);
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] Address address() const {
    Address addr;
    addr.kind = Address::Kind::unix_socket;
    addr.path = sock_;
    return addr;
  }

  void start_server(std::size_t workers = 2,
                    std::size_t budget = std::size_t{1} << 16) {
    ASSERT_EQ(server_, nullptr) << "server already running";
    server_ = std::make_unique<Server>();
    stop_.store(false);
    ServerOptions options;
    options.listen = {address()};
    options.journal_path = journal_;
    options.workers = workers;
    options.client_budget = budget;
    std::string error;
    ASSERT_TRUE(server_->start(options, &error)) << error;
    run_thread_ = std::thread([this] { server_->run(stop_); });
  }

  // graceful=true drains + checkpoints (SIGTERM); false is abandon(), the
  // simulated SIGKILL — pending events are dropped on the floor.
  void stop_server(bool graceful) {
    if (server_ == nullptr) return;
    if (graceful) {
      stop_.store(true);
    } else {
      server_->abandon();
    }
    if (run_thread_.joinable()) run_thread_.join();
    server_.reset();
  }

  void connect(Client& client, const std::string& name = "tester") {
    std::string error;
    ASSERT_TRUE(client.connect(address(), name, &error)) << error;
  }

  std::uint64_t submit(Client& client, const std::string& text) {
    std::string error;
    const auto job = client.submit(text, &error);
    EXPECT_TRUE(job) << error;
    return job.value_or(0);
  }

  // Parses the "QUEUE total=... batches=a/b" line out of STATS.
  struct QueueStats {
    std::size_t total = 0, claimed = 0, done = 0, in_flight = 0, queued = 0;
    std::size_t batches_done = 0, batches_total = 0;
  };
  QueueStats queue_stats(Client& client) {
    std::string error;
    const auto lines = client.stats(&error);
    EXPECT_TRUE(lines) << error;
    QueueStats q;
    if (lines) {
      for (const std::string& line : *lines) {
        if (std::sscanf(line.c_str(),
                        "QUEUE total=%zu claimed=%zu done=%zu in_flight=%zu "
                        "queued=%zu batches=%zu/%zu",
                        &q.total, &q.claimed, &q.done, &q.in_flight,
                        &q.queued, &q.batches_done, &q.batches_total) == 7) {
          return q;
        }
      }
      ADD_FAILURE() << "no QUEUE line in STATS reply";
    }
    return q;
  }

  // Parses "trials=<done>/<total>" out of a STATUS reply.
  static std::pair<std::size_t, std::size_t> status_trials(
      const std::string& status) {
    std::size_t done = 0, total = 0;
    const auto pos = status.find("trials=");
    if (pos != std::string::npos) {
      std::sscanf(status.c_str() + pos, "trials=%zu/%zu", &done, &total);
    }
    return {done, total};
  }

  // Polls STATUS until at least min_done trials completed (or the job
  // drained). Time-robust: no fixed sleep guessing at trial speed.
  std::size_t wait_for_trials(Client& client, std::uint64_t job,
                              std::size_t min_done) {
    std::string error;
    for (;;) {
      const auto status = client.status(job, &error);
      if (!status) {
        ADD_FAILURE() << error;
        return 0;
      }
      const auto [done, total] = status_trials(*status);
      if (done >= min_done || (total != 0 && done >= total)) return done;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  fs::path dir_;
  std::string journal_;
  std::string sock_;
  std::unique_ptr<Server> server_;
  std::atomic<bool> stop_{false};
  std::thread run_thread_;
};

// Small-but-real scenario set: three graph modes (fixed eager, lazy
// deterministic, and a sweep line) — 15 trials total, sub-second.
constexpr const char* kSmallText =
    "complete(n=256) push trials=6\n"
    "grid(rows=16,cols=16) push-pull trials=5\n"
    "cycle(n={64,128}) push trials=2 label=ring\n";

TEST_F(ServeServerTest, SubmitAndWatchReproduceOneShotRowsByteForByte) {
  start_server();
  Client client;
  connect(client);
  const std::uint64_t job = submit(client, kSmallText);
  ASSERT_EQ(job, 1u);
  std::string error;
  std::size_t trial_lines = 0;
  const auto result = client.watch(
      job, &error, [&](const TrialUpdate&) { ++trial_lines; });
  ASSERT_TRUE(result) << error;
  EXPECT_EQ(result->state, "done");
  EXPECT_EQ(trial_lines, 15u);  // 6 + 5 + 2 + 2
  EXPECT_EQ(result->rows, one_shot_rows(kSmallText));

  // Watching the finished job again re-streams the identical rows.
  const auto again = client.watch(job, &error);
  ASSERT_TRUE(again) << error;
  EXPECT_EQ(again->rows, result->rows);
  EXPECT_EQ(again->state, "done");

  // STATUS and the drained counters agree: claimed == done == total and
  // every batch retired.
  const auto status = client.status(job, &error);
  ASSERT_TRUE(status) << error;
  EXPECT_NE(status->find("state=done"), std::string::npos);
  EXPECT_NE(status->find("trials=15/15"), std::string::npos);
  const QueueStats q = queue_stats(client);
  EXPECT_EQ(q.total, 15u);
  EXPECT_EQ(q.claimed, 15u);
  EXPECT_EQ(q.done, 15u);
  EXPECT_EQ(q.in_flight, 0u);
  EXPECT_EQ(q.queued, 0u);
  EXPECT_EQ(q.batches_done, q.batches_total);
  EXPECT_EQ(q.batches_total, 4u);
}

TEST_F(ServeServerTest, InvalidSubmissionsAreRejectedWithNothingEnqueued) {
  start_server();
  Client client;
  connect(client);
  std::string error;
  // Unparsable line.
  EXPECT_FALSE(client.submit("not-a-graph push trials=2\n", &error));
  EXPECT_EQ(error.rfind("ERR parse", 0), 0u) << error;
  // Parseable but invalid (source outside the graph).
  EXPECT_FALSE(
      client.submit("complete(n=64) push source=99 trials=2\n", &error));
  EXPECT_EQ(error.rfind("ERR validate", 0), 0u) << error;
  // Curve tracing is a one-shot-only feature (curves are not journaled).
  EXPECT_FALSE(
      client.submit("complete(n=64) push(curve=on) trials=2\n", &error));
  EXPECT_EQ(error.rfind("ERR validate", 0), 0u) << error;
  // A bad line ANYWHERE in the submission rejects the whole job.
  EXPECT_FALSE(client.submit(
      "complete(n=64) push trials=2\nbroken line here\n", &error));
  // Nothing was enqueued or journaled by any of the rejects: the queue is
  // empty and the next valid job still gets id 1.
  const QueueStats q = queue_stats(client);
  EXPECT_EQ(q.total, 0u);
  EXPECT_EQ(submit(client, "complete(n=64) push trials=2\n"), 1u);
}

TEST_F(ServeServerTest, PerClientBudgetRejectsWithBusyUntilSlotsFree) {
  // 1 worker + a genuinely slow job (visit-exchange on a long cycle runs
  // ~250ms per trial) keeps trials pending long enough to observe BUSY
  // deterministically — star push trials retire in ~1ms and race the check.
  start_server(/*workers=*/1, /*budget=*/4);
  Client client;
  connect(client, "alice");
  std::string error;
  // A submission larger than the whole budget can never be accepted.
  EXPECT_FALSE(
      client.submit("cycle(n=4096) visit-exchange trials=6\n", &error));
  EXPECT_EQ(error.rfind("busy:", 0), 0u) << error;
  // Fill the budget exactly.
  const std::uint64_t job =
      submit(client, "cycle(n=4096) visit-exchange trials=4\n");
  ASSERT_NE(job, 0u);
  // A second job now exceeds it...
  EXPECT_FALSE(
      client.submit("complete(n=64) push trials=2\n", &error));
  EXPECT_EQ(error.rfind("busy:", 0), 0u) << error;
  // ...but another client's budget is untouched (per-client shares).
  Client other;
  connect(other, "bob");
  EXPECT_NE(submit(other, "complete(n=64) push trials=2\n"), 0u);
  // Cancelling frees alice's queued slots and SUBMIT works again.
  ASSERT_TRUE(client.cancel(job, &error)) << error;
  const auto retry = client.submit("complete(n=64) push trials=2\n", &error);
  EXPECT_TRUE(retry) << error;
}

TEST_F(ServeServerTest, CancelStopsAJobAndReportsItsState) {
  start_server(/*workers=*/1);
  Client client;
  connect(client);
  const std::uint64_t job =
      submit(client, "cycle(n=4096) visit-exchange trials=40\n");
  std::string error;
  ASSERT_TRUE(client.cancel(job, &error)) << error;
  const auto status = client.status(job, &error);
  ASSERT_TRUE(status) << error;
  EXPECT_NE(status->find("state=cancelled"), std::string::npos);
  // Cancelling twice is an error, not a crash.
  EXPECT_FALSE(client.cancel(job, &error));
  EXPECT_NE(error.find("already cancelled"), std::string::npos);
  // RESULTS on a cancelled job terminates immediately.
  const auto watched = client.watch(job, &error);
  ASSERT_TRUE(watched) << error;
  EXPECT_EQ(watched->state, "cancelled");
  // Unknown jobs are typed errors.
  EXPECT_FALSE(client.status(99, &error));
  EXPECT_EQ(error.rfind("ERR nojob", 0), 0u) << error;
}

TEST_F(ServeServerTest, TwoClientsShareOneWorkerWithoutStarvation) {
  start_server(/*workers=*/1);
  Client alice;
  connect(alice, "alice");
  Client bob;
  connect(bob, "bob");
  // alice floods 40 slow trials (~17ms each); bob follows with 4 fast
  // ones. Round-robin claims mean bob's job finishes while alice still
  // has a deep queue — the no-starvation acceptance criterion.
  const std::uint64_t big =
      submit(alice, "cycle(n=1024) visit-exchange trials=40\n");
  const std::uint64_t small =
      submit(bob, "complete(n=256) push trials=4\n");
  std::string error;
  const auto bob_result = bob.watch(small, &error);
  ASSERT_TRUE(bob_result) << error;
  EXPECT_EQ(bob_result->state, "done");
  const auto alice_status = alice.status(big, &error);
  ASSERT_TRUE(alice_status) << error;
  // bob finished after ~8 interleaved claims; alice's 40-trial job must
  // still be running (>30 trials, ~half a second of work, left then).
  EXPECT_NE(alice_status->find("state=running"), std::string::npos)
      << *alice_status;
  ASSERT_TRUE(alice.cancel(big, &error)) << error;  // don't wait out the rest
}

// The resume contract, end to end: kill the server (no checkpoint, no
// event drain) mid-sweep, restart on the same journal, and the job
// completes with rows byte-identical to a never-killed one-shot run.
TEST_F(ServeServerTest, KillAndRestartResumeByteIdenticalRows) {
  // Slow scenario (~60ms/trial) so the kill below genuinely lands
  // mid-sweep: the first journaled trial is observed, then the plug is
  // pulled with ~15 trials (~0.5s of work) still outstanding.
  const std::string text =
      "cycle(n=2048) visit-exchange trials=6\n"
      "grid(rows=32,cols=32) push-pull trials=10\n";
  start_server();
  {
    Client client;
    connect(client);
    ASSERT_EQ(submit(client, text), 1u);
    wait_for_trials(client, 1, 1);
  }
  stop_server(/*graceful=*/false);

  start_server();
  Client client;
  connect(client);
  std::string error;
  const auto result = client.watch(1, &error);
  ASSERT_TRUE(result) << error;
  EXPECT_EQ(result->state, "done");
  EXPECT_EQ(result->rows, one_shot_rows(text));

  // Survives a graceful restart too: the finished job is re-streamable
  // from the checkpointed journal alone.
  stop_server(/*graceful=*/true);
  start_server();
  Client again;
  connect(again);
  const auto replayed = again.watch(1, &error);
  ASSERT_TRUE(replayed) << error;
  EXPECT_EQ(replayed->state, "done");
  EXPECT_EQ(replayed->rows, result->rows);
}

// Kill at a random point AND tear the journal's tail (the torn-write
// SIGKILL case): replay drops the damaged record, the lost trials re-run,
// and the rows still match byte for byte.
TEST_F(ServeServerTest, ResumeSurvivesATornJournalTail) {
  const std::string text = "grid(rows=32,cols=32) push-pull trials=12\n";
  start_server();
  {
    Client client;
    connect(client);
    ASSERT_EQ(submit(client, text), 1u);
    // Wait for every trial record, then kill without checkpointing: the
    // tear below damages exactly the last TRIAL record, so resume must
    // re-run exactly that one trial.
    wait_for_trials(client, 1, 12);
  }
  stop_server(/*graceful=*/false);

  std::error_code ec;
  const auto size = fs::file_size(journal_, ec);
  ASSERT_FALSE(ec);
  // Header (16) + job record (~100) + at least one trial record: the tear
  // below must land inside a TRIAL record, never the job record.
  ASSERT_GT(size, 160u);
  fs::resize_file(journal_, size - 7, ec);  // tear mid-record
  ASSERT_FALSE(ec);

  start_server();
  Client client;
  connect(client);
  std::string error;
  const auto result = client.watch(1, &error);
  ASSERT_TRUE(result) << error;
  EXPECT_EQ(result->state, "done");
  EXPECT_EQ(result->rows, one_shot_rows(text));
}

}  // namespace
}  // namespace rumor::serve
